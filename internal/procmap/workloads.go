// Synthetic traffic generators for the skews the mapper is built for:
// halo exchanges (grid neighborhoods that no digit order can pack) and
// splatt-style layer collectives over a process grid. The benchmark suite
// and the load generator share these; the validation tests prefer
// matrices collected from actual simulator runs.

package procmap

import (
	"fmt"

	"repro/internal/commmatrix"
)

// Halo returns the communication matrix of a 2D periodic halo exchange on
// a rows×cols process grid (rank = row*cols + col): every rank exchanges
// bytes with its four grid neighbors.
func Halo(rows, cols int, bytes float64) (*commmatrix.Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("procmap: non-positive halo grid %dx%d", rows, cols)
	}
	m := commmatrix.New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			self := r*cols + c
			right := r*cols + (c+1)%cols
			down := ((r+1)%rows)*cols + c
			// Adding only the forward neighbors covers each link once (Add
			// records both directions); degenerate 1-wide axes fold onto self
			// and are dropped by Add.
			m.Add(self, right, bytes)
			m.Add(self, down, bytes)
		}
	}
	return m, nil
}

// GridLayers returns the layer-collective traffic of a g0×g1×g2 process
// grid (rank = (i·g1 + j)·g2 + k, the medium-grained CPD decomposition):
// for each tensor mode m, every mode-m layer — the ranks sharing that
// mode's coordinate — runs an all-to-all of modeBytes[m] per pair. Skewed
// modeBytes reproduce splatt's hub modes, where one mode's layers carry
// most of the volume.
func GridLayers(g [3]int, modeBytes [3]float64) (*commmatrix.Matrix, error) {
	n := g[0] * g[1] * g[2]
	if g[0] <= 0 || g[1] <= 0 || g[2] <= 0 {
		return nil, fmt.Errorf("procmap: non-positive grid %v", g)
	}
	m := commmatrix.New(n)
	coord := func(r int) (int, int, int) {
		return r / (g[1] * g[2]), r / g[2] % g[1], r % g[2]
	}
	for a := 0; a < n; a++ {
		ai, aj, ak := coord(a)
		for b := a + 1; b < n; b++ {
			bi, bj, bk := coord(b)
			var v float64
			if ai == bi {
				v += modeBytes[0]
			}
			if aj == bj {
				v += modeBytes[1]
			}
			if ak == bk {
				v += modeBytes[2]
			}
			if v > 0 {
				m.Add(a, b, v)
			}
		}
	}
	return m, nil
}
