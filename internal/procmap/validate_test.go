// Simulator validation: the matrix-aware mapping must strictly beat the
// best mixed-radix order on traffic the digit orders cannot express (halo
// exchange, splatt hub modes) and tie — within 1% — on the uniform block
// collectives the orders pack optimally. Matrices come from real
// simulator runs through the commmatrix collector, not from the synthetic
// generators, so the whole introspect → map loop is exercised.

package procmap

import (
	"context"
	"testing"

	"repro/internal/cluster"
	"repro/internal/commmatrix"
	"repro/internal/mpi"
	"repro/internal/splatt"
	"repro/internal/tensor"
	"repro/internal/topology"
)

// haloSimMatrix runs the examples/halo workload — a periodic 4×32 cart
// grid on 4 Hydra nodes (128 cores) — under the traffic collector.
func haloSimMatrix(t *testing.T) *commmatrix.Matrix {
	t.Helper()
	spec := cluster.Hydra(4, 1)
	n := spec.Hierarchy().Size()
	col := commmatrix.NewCollector(n)
	binding := make([]int, n)
	for i := range binding {
		binding[i] = i
	}
	_, err := mpi.Run(spec, binding, mpi.Config{P2P: col}, func(r *mpi.Rank) {
		w := r.World()
		cart, err := w.CartCreate(r, []int{4, 32}, []bool{true, true}, false)
		if err != nil {
			t.Error(err)
			return
		}
		for dim := 0; dim < 2; dim++ {
			cart.NeighborExchange(r, dim, mpi.BytesBuf(256<<10))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return col.Matrix()
}

func TestHaloMappingBeatsBestOrder(t *testing.T) {
	h := cluster.HydraHierarchy(4)
	m := haloSimMatrix(t)
	if m.Total() <= 0 {
		t.Fatal("collector saw no traffic")
	}
	res, err := Map(context.Background(), m, h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, _, orderCost, _, err := BestOrder(m, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A 4×32 torus does not factor into ⟦4,2,2,8⟧ digits: every σ leaves
	// one halo direction crossing domains, so the matrix-aware mapping
	// must win strictly.
	if res.Cost >= orderCost {
		t.Fatalf("halo: matrix-aware cost %g not better than best order %g", res.Cost, orderCost)
	}
	t.Logf("halo: greedy %.4g, refined %.4g (%d swaps), best order %.4g (%.1f%% better)",
		res.GreedyCost, res.Cost, res.Swaps, orderCost, 100*(orderCost-res.Cost)/orderCost)
}

// splattSimMatrix runs a scaled-down hub-mode CPD under the collector: 2
// Hydra nodes (64 cores), a 4×4×4 grid, and a nell-2-shaped tensor whose
// huge middle mode makes the mode-1 layer Alltoallv dominate the traffic
// (each rank's per-peer volume scales with its distinct mode-1 rows). The
// heavy mode sits on the grid's MIDDLE coordinate, which no consecutive
// σ-segmentation of ⟦2,2,2,8⟧ can pack innermost — the structural gap the
// matrix-aware mapper exploits.
func splattSimMatrix(t *testing.T, h topology.Hierarchy) *commmatrix.Matrix {
	t.Helper()
	col := commmatrix.NewCollector(h.Size())
	_, err := splatt.Run(splatt.Config{
		Spec:      cluster.Hydra(2, 1),
		Hierarchy: h,
		Order:     []int{3, 2, 1, 0},
		Grid:      tensor.Grid{4, 4, 4},
		Tensor:    tensor.SyntheticNell([3]int{400, 40000, 400}, 100_000, 17),
		Rank:      8,
		Iters:     1,
		MPI:       mpi.Config{P2P: col},
	})
	if err != nil {
		t.Fatal(err)
	}
	return col.Matrix()
}

func TestSplattHubMappingBeatsBestOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated CPD run")
	}
	h := cluster.HydraHierarchy(2)
	m := splattSimMatrix(t, h)
	if m.Total() <= 0 {
		t.Fatal("collector saw no traffic")
	}
	res, err := Map(context.Background(), m, h, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, _, orderCost, _, err := BestOrder(m, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost >= orderCost {
		t.Fatalf("splatt: matrix-aware cost %g not better than best order %g", res.Cost, orderCost)
	}
	t.Logf("splatt: greedy %.4g, refined %.4g (%d swaps), best order %.4g (%.1f%% better)",
		res.GreedyCost, res.Cost, res.Swaps, orderCost, 100*(orderCost-res.Cost)/orderCost)
}

func TestUniformCollectivesTieWithBestOrder(t *testing.T) {
	// Uniform block collectives are exactly what the mixed-radix orders
	// pack optimally; the matrix-aware mapping must not lose more than 1%.
	h := topology.MustNew(2, 4, 2, 8)
	for _, block := range []int{8, 16, 32} {
		m, err := commmatrix.FromSubcommunicators(h.Size(), block, 4096)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Map(context.Background(), m, h, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		_, _, orderCost, _, err := BestOrder(m, h, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost > 1.01*orderCost {
			t.Fatalf("block %d: matrix-aware cost %g loses to best order %g by more than 1%%",
				block, res.Cost, orderCost)
		}
		t.Logf("uniform block %d: matrix-aware %.4g vs best order %.4g", block, res.Cost, orderCost)
	}
}
