package trace

import (
	"math"
	"strings"
	"testing"
)

func TestTimeInAndCensus(t *testing.T) {
	r := NewRecorder()
	// Two ranks, two comms (id 1 size 16, id 2 size 16), one comm of 4.
	r.Collective(1, 16, "Alltoall", 100, 0, 0.0, 1.0)
	r.Collective(1, 16, "Alltoall", 100, 1, 0.0, 3.0)
	r.Collective(2, 16, "Alltoall", 100, 2, 0.0, 2.0)
	r.Collective(3, 4, "Bcast", 10, 0, 1.0, 1.5)

	// Mean over ranks of total Alltoall time on 16-comms: (1+3+2)/3 = 2.
	if got := r.TimeIn("Alltoall", 16); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("TimeIn(Alltoall, 16) = %v, want 2", got)
	}
	if got := r.TimeIn("Bcast", 0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("TimeIn(Bcast, any) = %v, want 0.5", got)
	}
	if got := r.TimeIn("Reduce", 0); got != 0 {
		t.Errorf("TimeIn(absent op) = %v", got)
	}
	census := r.CommCount()
	if census[16] != 2 || census[4] != 1 {
		t.Errorf("census = %v", census)
	}
}

func TestOpTimesAndReport(t *testing.T) {
	r := NewRecorder()
	r.Collective(1, 8, "Allreduce", 64, 0, 0, 2)
	r.Collective(1, 8, "Bcast", 64, 0, 2, 2.5)
	ops := r.OpTimes()
	if ops["Allreduce"] != 2 || ops["Bcast"] != 0.5 {
		t.Errorf("OpTimes = %v", ops)
	}
	rep := r.Report()
	if !strings.Contains(rep, "Allreduce") || !strings.Contains(rep, "size 8") {
		t.Errorf("Report = %q", rep)
	}
}

func TestRecordsAndReset(t *testing.T) {
	r := NewRecorder()
	r.Collective(1, 2, "Scan", 8, 0, 0, 1)
	if len(r.Records()) != 1 {
		t.Error("record not stored")
	}
	r.Reset()
	if len(r.Records()) != 0 {
		t.Error("Reset did not clear records")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPerfect := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, yPerfect); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", got)
	}
	yInv := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yInv); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	yFlat := []float64{3, 3, 3, 3, 3}
	if got := Pearson(x, yFlat); !math.IsNaN(got) {
		t.Errorf("zero-variance correlation = %v, want NaN", got)
	}
	if got := Pearson([]float64{1}, []float64{2}); !math.IsNaN(got) {
		t.Errorf("single-point correlation = %v, want NaN", got)
	}
	// Noisy but strongly correlated.
	y := []float64{2.1, 3.9, 6.2, 7.8, 10.1}
	if got := Pearson(x, y); got < 0.99 {
		t.Errorf("noisy correlation = %v, want > 0.99", got)
	}
}

func TestPearsonPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Pearson([]float64{1, 2}, []float64{1})
}
