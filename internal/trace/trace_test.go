package trace

import (
	"math"
	"strings"
	"testing"
)

func TestTimeInAndCensus(t *testing.T) {
	r := NewRecorder()
	// Two ranks, two comms (id 1 size 16, id 2 size 16), one comm of 4.
	r.Collective(1, 16, "Alltoall", 100, 0, 0.0, 1.0)
	r.Collective(1, 16, "Alltoall", 100, 1, 0.0, 3.0)
	r.Collective(2, 16, "Alltoall", 100, 2, 0.0, 2.0)
	r.Collective(3, 4, "Bcast", 10, 0, 1.0, 1.5)

	// Mean over ranks of total Alltoall time on 16-comms: (1+3+2)/3 = 2.
	if got := r.TimeIn("Alltoall", 16); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("TimeIn(Alltoall, 16) = %v, want 2", got)
	}
	if got := r.TimeIn("Bcast", 0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("TimeIn(Bcast, any) = %v, want 0.5", got)
	}
	if got := r.TimeIn("Reduce", 0); got != 0 {
		t.Errorf("TimeIn(absent op) = %v", got)
	}
	census := r.CommCount()
	if census[16] != 2 || census[4] != 1 {
		t.Errorf("census = %v", census)
	}
}

func TestOpTimesAndReport(t *testing.T) {
	r := NewRecorder()
	r.Collective(1, 8, "Allreduce", 64, 0, 0, 2)
	r.Collective(1, 8, "Bcast", 64, 0, 2, 2.5)
	ops := r.OpTimes()
	if ops["Allreduce"] != 2 || ops["Bcast"] != 0.5 {
		t.Errorf("OpTimes = %v", ops)
	}
	rep := r.Report()
	if !strings.Contains(rep, "Allreduce") || !strings.Contains(rep, "size 8") {
		t.Errorf("Report = %q", rep)
	}
}

func TestRecordsAndReset(t *testing.T) {
	r := NewRecorder()
	r.Collective(1, 2, "Scan", 8, 0, 0, 1)
	if len(r.Records()) != 1 {
		t.Error("record not stored")
	}
	r.Reset()
	if len(r.Records()) != 0 {
		t.Error("Reset did not clear records")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPerfect := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, yPerfect); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %v", got)
	}
	yInv := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yInv); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	yFlat := []float64{3, 3, 3, 3, 3}
	if got := Pearson(x, yFlat); !math.IsNaN(got) {
		t.Errorf("zero-variance correlation = %v, want NaN", got)
	}
	if got := Pearson([]float64{1}, []float64{2}); !math.IsNaN(got) {
		t.Errorf("single-point correlation = %v, want NaN", got)
	}
	// Noisy but strongly correlated.
	y := []float64{2.1, 3.9, 6.2, 7.8, 10.1}
	if got := Pearson(x, y); got < 0.99 {
		t.Errorf("noisy correlation = %v, want > 0.99", got)
	}
}

func TestPearsonPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Pearson([]float64{1, 2}, []float64{1})
}

func TestCorrelationErrors(t *testing.T) {
	if _, err := Correlation([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := Correlation([]float64{1}, []float64{2}); err == nil {
		t.Error("single sample: want error")
	}
	if _, err := Correlation(nil, nil); err == nil {
		t.Error("empty samples: want error")
	}
	if _, err := Correlation([]float64{1, 2, 3}, []float64{5, 5, 5}); err == nil {
		t.Error("zero variance: want error")
	}
	got, err := Correlation([]float64{1, 2, 3}, []float64{2, 4, 6})
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect correlation = %v, %v", got, err)
	}
}

func TestEmptyRecorderQueries(t *testing.T) {
	r := NewRecorder()
	if got := r.TimeIn("Alltoall", 16); got != 0 {
		t.Errorf("TimeIn on empty recorder = %v, want 0", got)
	}
	if got := r.MaxTimeIn("", 0); got != 0 {
		t.Errorf("MaxTimeIn on empty recorder = %v, want 0", got)
	}
	if got := r.PercentileTime("", 0, 0.5); got != 0 || math.IsNaN(got) {
		t.Errorf("PercentileTime on empty recorder = %v, want NaN-free 0", got)
	}
	if got := r.Len(); got != 0 {
		t.Errorf("Len on empty recorder = %d", got)
	}
	if got := len(r.CommCount()); got != 0 {
		t.Errorf("CommCount on empty recorder has %d entries", got)
	}
	if rep := r.Report(); rep == "" {
		t.Error("Report on empty recorder should still render headers")
	}
}

func TestPercentileTime(t *testing.T) {
	r := NewRecorder()
	// Four ranks with per-rank totals 1, 2, 3, 4.
	for rank := 0; rank < 4; rank++ {
		r.Collective(7, 4, "Alltoall", 1024, rank, 0, float64(rank+1))
	}
	if got := r.PercentileTime("Alltoall", 4, 0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	if got := r.PercentileTime("Alltoall", 4, 1); got != 4 {
		t.Errorf("p100 = %v, want 4", got)
	}
	if got := r.PercentileTime("Alltoall", 4, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("p50 = %v, want 2.5", got)
	}
	if got := r.PercentileTime("Bcast", 0, 0.5); got != 0 {
		t.Errorf("no matching op = %v, want 0", got)
	}
}

func TestResetSpansMeasurements(t *testing.T) {
	r := NewRecorder()
	r.Collective(1, 2, "Allreduce", 64, 0, 0, 1)
	r.Collective(1, 2, "Allreduce", 64, 1, 0, 3)
	first := r.TimeIn("Allreduce", 2)
	if first != 2 {
		t.Errorf("first measurement mean = %v, want 2", first)
	}
	r.Reset()
	r.Collective(1, 2, "Allreduce", 64, 0, 0, 5)
	r.Collective(1, 2, "Allreduce", 64, 1, 0, 5)
	if got := r.TimeIn("Allreduce", 2); got != 5 {
		t.Errorf("second measurement mean = %v, want 5 (stale records survived Reset)", got)
	}
}
