// Package trace is the simulation's stand-in for mpisee (Vardas et al.,
// §4.2): a per-communicator profiler recording how much time each rank
// spends in each collective of each communicator, plus the Pearson
// correlation the paper uses to attribute Splatt's CPD duration to the
// MPI_Alltoallv time of its 16-process communicators.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Record is one collective call observed on one rank.
type Record struct {
	CommID   int
	CommSize int
	Op       string
	Bytes    int64
	Rank     int
	Start    float64
	End      float64
}

// Recorder implements mpi.Tracer, collecting per-operation records.
// It is safe for concurrent use.
type Recorder struct {
	mu   sync.Mutex
	recs []Record
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Collective implements the mpi.Tracer interface.
func (r *Recorder) Collective(commID, commSize int, op string, bytes int64, rank int, start, end float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recs = append(r.recs, Record{
		CommID: commID, CommSize: commSize, Op: op, Bytes: bytes,
		Rank: rank, Start: start, End: end,
	})
}

// Records returns a copy of all records.
func (r *Recorder) Records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Record(nil), r.recs...)
}

// Len returns the number of records.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.recs)
}

// Reset discards all records, so one recorder can span multiple
// measurements (record, analyze, Reset, record again).
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recs = nil
}

// TimeIn returns the mean over ranks of the total time spent in the given
// operation on communicators of the given size (0 matches any size, ""
// matches any operation). This is the quantity correlated with the
// application duration in §4.2.
func (r *Recorder) TimeIn(op string, commSize int) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	perRank := map[int]float64{}
	for _, rec := range r.recs {
		if op != "" && rec.Op != op {
			continue
		}
		if commSize != 0 && rec.CommSize != commSize {
			continue
		}
		perRank[rec.Rank] += rec.End - rec.Start
	}
	if len(perRank) == 0 {
		return 0
	}
	var sum float64
	for _, v := range perRank {
		sum += v
	}
	return sum / float64(len(perRank))
}

// MaxTimeIn returns the maximum over ranks of the total time spent in the
// given operation on communicators of the given size (0/"" match any).
// For imbalanced workloads this straggler view attributes time to the
// operation that actually consumed it: with a dominant communicator, the
// mean dilutes its cost 1/commCount and the waiting of the other ranks
// surfaces in whatever operation follows.
func (r *Recorder) MaxTimeIn(op string, commSize int) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	perRank := map[int]float64{}
	for _, rec := range r.recs {
		if op != "" && rec.Op != op {
			continue
		}
		if commSize != 0 && rec.CommSize != commSize {
			continue
		}
		perRank[rec.Rank] += rec.End - rec.Start
	}
	var mx float64
	for _, v := range perRank {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// CommCount returns how many distinct communicators of each size appear in
// the records — the mpisee communicator census ("Splatt uses 3 comms with
// all 1024 processes, 8 with 256, 64 with 16").
func (r *Recorder) CommCount() map[int]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	sizes := map[int]map[int]bool{}
	for _, rec := range r.recs {
		if sizes[rec.CommSize] == nil {
			sizes[rec.CommSize] = map[int]bool{}
		}
		sizes[rec.CommSize][rec.CommID] = true
	}
	out := map[int]int{}
	for size, ids := range sizes {
		out[size] = len(ids)
	}
	return out
}

// OpTimes returns the mean-over-ranks total time per operation name.
func (r *Recorder) OpTimes() map[string]float64 {
	r.mu.Lock()
	ops := map[string]bool{}
	for _, rec := range r.recs {
		ops[rec.Op] = true
	}
	r.mu.Unlock()
	out := map[string]float64{}
	for op := range ops {
		out[op] = r.TimeIn(op, 0)
	}
	return out
}

// Report renders an mpisee-style per-communicator-size summary.
func (r *Recorder) Report() string {
	var b strings.Builder
	counts := r.CommCount()
	sizes := make([]int, 0, len(counts))
	for s := range counts {
		sizes = append(sizes, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	fmt.Fprintf(&b, "communicator census:\n")
	for _, s := range sizes {
		fmt.Fprintf(&b, "  %3d communicator(s) of size %d\n", counts[s], s)
	}
	fmt.Fprintf(&b, "time per operation (mean over ranks):\n")
	ops := r.OpTimes()
	names := make([]string, 0, len(ops))
	for op := range ops {
		names = append(names, op)
	}
	sort.Slice(names, func(i, j int) bool { return ops[names[i]] > ops[names[j]] })
	for _, op := range names {
		fmt.Fprintf(&b, "  %-14s %10.6f s\n", op, ops[op])
	}
	return b.String()
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples. It returns NaN for fewer than two points or zero variance, and
// panics on a length mismatch (a caller bug). Callers that prefer explicit
// errors over panics/NaN should use Correlation.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("trace: Pearson length mismatch")
	}
	r, err := Correlation(x, y)
	if err != nil {
		return math.NaN()
	}
	return r
}

// Correlation is Pearson with explicit errors: a length mismatch, fewer
// than two samples, and zero variance each return a described error
// instead of panicking or producing NaN.
func Correlation(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("trace: correlation of mismatched samples (%d vs %d)", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("trace: correlation needs at least 2 samples, have %d", len(x))
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, fmt.Errorf("trace: correlation undefined for zero-variance sample")
	}
	return cov / math.Sqrt(vx*vy), nil
}

// PercentileTime returns the q-th percentile (0 ≤ q ≤ 1, linearly
// interpolated) over ranks of the total time spent in the given operation
// on communicators of the given size (0/"" match any). An empty selection
// returns 0, never NaN, so an unpopulated recorder is safe to query.
func (r *Recorder) PercentileTime(op string, commSize int, q float64) float64 {
	r.mu.Lock()
	perRank := map[int]float64{}
	for _, rec := range r.recs {
		if op != "" && rec.Op != op {
			continue
		}
		if commSize != 0 && rec.CommSize != commSize {
			continue
		}
		perRank[rec.Rank] += rec.End - rec.Start
	}
	r.mu.Unlock()
	if len(perRank) == 0 {
		return 0
	}
	vals := make([]float64, 0, len(perRank))
	for _, v := range perRank {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[len(vals)-1]
	}
	pos := q * float64(len(vals)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(vals) {
		return vals[len(vals)-1]
	}
	return vals[lo] + frac*(vals[lo+1]-vals[lo])
}
