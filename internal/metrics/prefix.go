// Prefix kernels for the branch-and-bound order search: closed-form
// facts about *partial* orders (digit-order prefixes), derived from the
// same §3.3 structure as fastpath.go.
//
// The key observation is that the first subcommunicator of size m is
// fully determined by the shortest prefix of σ whose radix product
// reaches m (the "covering prefix"): reordered ranks [0, m) decompose
// entirely inside those positions, so every completion of a covering
// prefix places the communicator on the same cores. crossingsPerLevel
// already exploits this — its loop stops once the prefix product covers
// m — and the functions here expose the prefix structure directly so a
// search over prefixes can bound the cost of all completions without
// enumerating them.

package metrics

// PrefixProduct returns the radix product of the prefix's levels — the
// number of reordered ranks the prefix enumerates before any deeper
// digit varies. Level indices outside [0, len(ar)) are rejected by
// construction at the call sites; the product is not overflow-checked
// (callers validate hierarchy size first, as mapd's parse limits do).
func PrefixProduct(ar, prefix []int) int {
	prod := 1
	for _, l := range prefix {
		prod *= ar[l]
	}
	return prod
}

// PrefixCoverLen returns the length of the shortest prefix of sigma
// whose radix product reaches m — the number of leading positions that
// fully determine the first subcommunicator of size m. It returns
// len(sigma) when even the whole order falls short (only possible when
// m exceeds the hierarchy size).
func PrefixCoverLen(ar, sigma []int, m int) int {
	prod := 1
	for t, l := range sigma {
		if prod >= m {
			return t
		}
		prod *= ar[l]
	}
	return len(sigma)
}

// BestCompletionCrossLevel returns the deepest (largest-index, i.e.
// cheapest) outermost-crossing level that any completion of the given
// prefix can achieve for the first subcommunicator of size m.
//
// The outermost level a communicator of size m crosses under a full
// order σ is min(σ(0), …, σ(s-1)), where s is the covering-prefix
// length. For a fixed prefix the min over the prefix part is settled;
// a completion only chooses which remaining levels join the covering
// span. Taking the innermost (largest-index) remaining levels first
// maximizes the min, so the greedy fill below is exact: any completion
// crosses at level BestCompletionCrossLevel or further out (smaller
// index). That makes it an admissible input to latency lower bounds.
//
// When the prefix already covers m the answer is exact — the crossing
// level of every completion. A return of len(ar) means no crossing
// (m ≤ 1).
func BestCompletionCrossLevel(ar, prefix []int, m int) int {
	k := len(ar)
	minLvl := k
	if m <= 1 {
		return minLvl
	}
	prod := 1
	var used uint32
	for _, l := range prefix {
		used |= 1 << uint(l)
		if l < minLvl {
			minLvl = l
		}
		prod *= ar[l]
		if prod >= m {
			return minLvl
		}
	}
	for l := k - 1; l >= 0; l-- {
		if used&(1<<uint(l)) != 0 {
			continue
		}
		if l < minLvl {
			minLvl = l
		}
		prod *= ar[l]
		if prod >= m {
			return minLvl
		}
	}
	return minLvl
}
