// Package metrics implements the two order-characterization metrics of
// §3.3: the ring cost and the percentages of process pairs per level. Both
// describe how a communicator's processes are placed on the machine: the
// ring cost reflects the rank order inside the communicator, the pair
// percentages how far the communicator spreads over the hierarchy. The two
// are independent — the ring cost can distinguish two orders with the same
// pair percentages.
package metrics

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/mixedradix"
	"repro/internal/topology"
)

// Placement is the mapping of a communicator onto cores: Cores[i] is the
// core (identified by its rank in the hierarchy's initial enumeration) that
// holds communicator rank i.
type Placement struct {
	H     topology.Hierarchy
	Cores []int
}

// FirstComm returns the placement of the first subcommunicator (the one
// containing reordered ranks 0 … commSize-1) when hierarchy h is reordered
// with order sigma: the blue communicator of Figure 2.
func FirstComm(h topology.Hierarchy, sigma []int, commSize int) (Placement, error) {
	ro, err := mixedradix.NewReorderer(h.Arities(), sigma)
	if err != nil {
		return Placement{}, err
	}
	if commSize <= 0 || commSize > h.Size() {
		return Placement{}, fmt.Errorf("metrics: communicator size %d out of range (0, %d]", commSize, h.Size())
	}
	inv := ro.InverseTable()
	return Placement{H: h, Cores: inv[:commSize]}, nil
}

// Comm returns the placement of the idx-th subcommunicator (block
// colouring: reordered ranks idx·commSize … (idx+1)·commSize-1).
func Comm(h topology.Hierarchy, sigma []int, commSize, idx int) (Placement, error) {
	ro, err := mixedradix.NewReorderer(h.Arities(), sigma)
	if err != nil {
		return Placement{}, err
	}
	n := h.Size()
	if commSize <= 0 || n%commSize != 0 {
		return Placement{}, fmt.Errorf("metrics: communicator size %d does not divide %d", commSize, n)
	}
	if idx < 0 || idx >= n/commSize {
		return Placement{}, fmt.Errorf("metrics: communicator index %d out of range [0, %d)", idx, n/commSize)
	}
	inv := ro.InverseTable()
	return Placement{H: h, Cores: inv[idx*commSize : (idx+1)*commSize]}, nil
}

// RingCost computes the §3.3 ring cost of the placement: the sum over
// consecutive communicator ranks (0→1, 1→2, …, n-2→n-1) of the crossing
// cost between the cores that hold them, where a hop inside the same lowest
// hierarchy level costs 1 and each additional level crossed adds 1.
func RingCost(p Placement) int {
	total := 0
	for i := 0; i+1 < len(p.Cores); i++ {
		total += p.H.CrossCost(p.Cores[i], p.Cores[i+1])
	}
	return total
}

// PairsPerLevel returns, for each hierarchy level from the innermost (index
// 0 of the result) to the outermost, the percentage of unordered process
// pairs of the communicator whose communication crosses up to that level
// and no further: element 0 counts pairs fitting inside one lowest-level
// domain, element j pairs whose first differing coordinate is j levels
// above the innermost. The percentages sum to 100 for communicators with
// at least one pair.
func PairsPerLevel(p Placement) []float64 {
	k := p.H.Depth()
	counts := make([]int, k)
	n := len(p.Cores)
	pairs := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := p.H.FirstDiffLevel(p.Cores[i], p.Cores[j])
			if d == k {
				continue // same core (only possible with oversubscription)
			}
			counts[k-1-d]++
			pairs++
		}
	}
	out := make([]float64, k)
	if pairs == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = 100 * float64(c) / float64(pairs)
	}
	return out
}

// Characterization bundles both metrics for one order, as printed in the
// figure legends: "order (ring cost - pct, pct, …)".
type Characterization struct {
	Order    []int
	RingCost int
	Pairs    []float64
}

// Characterize computes the legend entry of an order for the first
// subcommunicator of the given size. It uses the closed-form kernels of
// fastpath.go — O(k²) in the hierarchy depth, no reorder table — and is
// proven equal to the table-based reference (CharacterizeTable) by
// differential test.
func Characterize(h topology.Hierarchy, sigma []int, commSize int) (Characterization, error) {
	ar := h.Arities()
	if err := mixedradix.CheckOrder(ar, sigma); err != nil {
		return Characterization{}, err
	}
	n := h.Size()
	if commSize <= 0 || commSize > n {
		return Characterization{}, fmt.Errorf("metrics: communicator size %d out of range (0, %d]", commSize, n)
	}
	k := len(ar)
	ring := ringCostClosed(ar, sigma, commSize)
	counts := pairCountsPerLevel(ar, sigma, commSize)
	pairs := make([]float64, k)
	if total := int64(commSize) * int64(commSize-1) / 2; total > 0 {
		for j := range pairs {
			pairs[j] = 100 * float64(counts[j]) / float64(total)
		}
	}
	return Characterization{
		Order:    append([]int(nil), sigma...),
		RingCost: ring,
		Pairs:    pairs,
	}, nil
}

// String renders the characterization in the figure-legend format, e.g.
// "0-1-2-3 (60 - 0.0, 0.0, 0.0, 100.0)".
func (c Characterization) String() string {
	var b strings.Builder
	for i, v := range c.Order {
		if i > 0 {
			b.WriteByte('-')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	fmt.Fprintf(&b, " (%d - ", c.RingCost)
	for i, v := range c.Pairs {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.1f", v)
	}
	b.WriteString(")")
	return b.String()
}

// SpreadScore summarizes the pair percentages into a single number in
// [0, 1]: 0 when every pair fits in the lowest level (fully packed), 1 when
// every pair crosses the whole hierarchy (fully spread). It is the
// pair-weighted mean of levels crossed, normalized by depth-1.
func (c Characterization) SpreadScore() float64 {
	k := len(c.Pairs)
	if k <= 1 {
		return 0
	}
	var mean float64
	for j, pct := range c.Pairs {
		mean += float64(j) * pct / 100
	}
	return mean / float64(k-1)
}

// SamePairs reports whether two characterizations place their communicator
// over the hierarchy identically (same percentages up to floating noise).
// Orders with the same pair percentages but different ring costs map the
// communicator to an equivalent set of cores while numbering ranks
// differently (§3.3, orders [0,1,2] vs [1,0,2]).
func (c Characterization) SamePairs(o Characterization) bool {
	if len(c.Pairs) != len(o.Pairs) {
		return false
	}
	for i := range c.Pairs {
		if math.Abs(c.Pairs[i]-o.Pairs[i]) > 1e-9 {
			return false
		}
	}
	return true
}

// EquivalenceClasses groups the given orders by their (ring cost, pair
// percentages) signature for the first subcommunicator of size commSize.
// Orders in the same class are expected to exhibit the same performance in
// the absence of inter-communicator communication (§3.3). Classes preserve
// the input order of first appearance.
func EquivalenceClasses(h topology.Hierarchy, orders [][]int, commSize int) ([][]Characterization, error) {
	var classes [][]Characterization
	for _, sigma := range orders {
		ch, err := Characterize(h, sigma, commSize)
		if err != nil {
			return nil, err
		}
		placed := false
		for i, cls := range classes {
			if cls[0].RingCost == ch.RingCost && cls[0].SamePairs(ch) {
				classes[i] = append(classes[i], ch)
				placed = true
				break
			}
		}
		if !placed {
			classes = append(classes, []Characterization{ch})
		}
	}
	return classes, nil
}
