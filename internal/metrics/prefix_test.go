package metrics

import (
	"testing"

	"repro/internal/perm"
)

// bruteCrossLevel computes the outermost level a communicator of size m
// crosses under a full order sigma, straight from the definition used by
// the advisor: min over the covering prefix.
func bruteCrossLevel(ar, sigma []int, m int) int {
	k := len(ar)
	if m <= 1 {
		return k
	}
	minLvl := k
	prod := 1
	for _, l := range sigma {
		if l < minLvl {
			minLvl = l
		}
		prod *= ar[l]
		if prod >= m {
			return minLvl
		}
	}
	return minLvl
}

func TestPrefixCoverLen(t *testing.T) {
	ar := []int{2, 3, 2, 4}
	cases := []struct {
		sigma []int
		m     int
		want  int
	}{
		{[]int{0, 1, 2, 3}, 1, 0},
		{[]int{0, 1, 2, 3}, 2, 1},
		{[]int{0, 1, 2, 3}, 6, 2},
		{[]int{0, 1, 2, 3}, 7, 3},
		{[]int{3, 2, 1, 0}, 8, 2},
		{[]int{0, 2, 1, 3}, 48, 4},
		{[]int{0, 1, 2, 3}, 100, 4}, // m beyond hierarchy size
	}
	for _, c := range cases {
		if got := PrefixCoverLen(ar, c.sigma, c.m); got != c.want {
			t.Errorf("PrefixCoverLen(%v, m=%d) = %d, want %d", c.sigma, c.m, got, c.want)
		}
	}
}

// TestBestCompletionCrossLevelExact checks the two guarantees against
// brute force over every prefix of every permutation: (a) for covered
// prefixes the value equals the crossing level of every completion, and
// (b) for uncovered prefixes it equals the max (deepest) crossing level
// over all completions, and no completion crosses deeper.
func TestBestCompletionCrossLevelExact(t *testing.T) {
	shapes := [][]int{
		{2, 2, 4},
		{2, 3, 2, 2},
		{4, 2, 2, 2},
		{2, 2, 2, 2, 2},
	}
	for _, ar := range shapes {
		k := len(ar)
		size := 1
		for _, a := range ar {
			size *= a
		}
		for m := 2; m <= size; m++ {
			if size%m != 0 {
				continue
			}
			for _, sigma := range perm.All(k) {
				for t2 := 0; t2 <= k; t2++ {
					prefix := sigma[:t2]
					got := BestCompletionCrossLevel(ar, prefix, m)
					// Brute-force the max crossing level over all
					// completions of the prefix.
					best := -1
					for _, full := range perm.All(k) {
						if !hasPrefixSet(full, prefix) {
							continue
						}
						cl := bruteCrossLevel(ar, full, m)
						if cl > best {
							best = cl
						}
					}
					if got != best {
						t.Fatalf("ar=%v prefix=%v m=%d: BestCompletionCrossLevel=%d, brute best=%d",
							ar, prefix, m, got, best)
					}
				}
			}
		}
	}
}

// hasPrefixSet reports whether full starts with exactly the given prefix
// (same levels, same positions).
func hasPrefixSet(full, prefix []int) bool {
	for i, l := range prefix {
		if full[i] != l {
			return false
		}
	}
	return true
}

func TestPrefixProduct(t *testing.T) {
	ar := []int{2, 3, 4}
	if got := PrefixProduct(ar, nil); got != 1 {
		t.Errorf("empty prefix product = %d, want 1", got)
	}
	if got := PrefixProduct(ar, []int{2, 0}); got != 8 {
		t.Errorf("PrefixProduct([2 0]) = %d, want 8", got)
	}
}
