package metrics

import (
	"math"
	"testing"

	"repro/internal/perm"
	"repro/internal/topology"
)

func mustChar(t *testing.T, h topology.Hierarchy, order string, commSize int) Characterization {
	t.Helper()
	sigma, err := perm.Parse(order)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Characterize(h, sigma, commSize)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func approxEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 0.05 {
			return false
		}
	}
	return true
}

// §3.3 worked examples on the Figure 2 hierarchy ⟦2,2,4⟧ with
// communicators of 4 processes.
func TestSection33Examples(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	c012 := mustChar(t, h, "0-1-2", 4)
	if c012.RingCost != 9 {
		t.Errorf("[0,1,2] ring cost = %d, want 9", c012.RingCost)
	}
	c102 := mustChar(t, h, "1-0-2", 4)
	if c102.RingCost != 7 {
		t.Errorf("[1,0,2] ring cost = %d, want 7", c102.RingCost)
	}
	if !approxEq(c102.Pairs, []float64{0, 33.3, 66.7}) {
		t.Errorf("[1,0,2] pairs = %v, want [0 33.3 66.7]", c102.Pairs)
	}
	c210 := mustChar(t, h, "2-1-0", 4)
	if !approxEq(c210.Pairs, []float64{100, 0, 0}) {
		t.Errorf("[2,1,0] pairs = %v, want [100 0 0]", c210.Pairs)
	}
}

// Golden values from every figure legend of the paper (§4.1). These pin
// down the full Decompose/Compose/metric chain.
func TestFigureLegendMetrics(t *testing.T) {
	hydra := topology.MustNew(16, 2, 2, 8)
	lumi := topology.MustNew(16, 2, 4, 2, 8)
	cases := []struct {
		name     string
		h        topology.Hierarchy
		commSize int
		order    string
		ringCost int
		pairs    []float64
	}{
		// Figure 3: Hydra, Alltoall, 16 procs/comm.
		{"F3", hydra, 16, "0-1-2-3", 60, []float64{0, 0, 0, 100}},
		{"F3", hydra, 16, "2-1-0-3", 40, []float64{0, 6.7, 13.3, 80}},
		{"F3", hydra, 16, "1-3-0-2", 45, []float64{46.7, 0, 53.3, 0}},
		{"F3", hydra, 16, "1-3-2-0", 45, []float64{46.7, 0, 53.3, 0}},
		{"F3", hydra, 16, "3-1-0-2", 17, []float64{46.7, 0, 53.3, 0}},
		{"F3", hydra, 16, "3-2-1-0", 16, []float64{46.7, 53.3, 0, 0}},
		// Figure 4: Hydra, Alltoall, 128 procs/comm.
		{"F4", hydra, 128, "0-1-2-3", 508, []float64{0.8, 1.6, 3.1, 94.5}},
		{"F4", hydra, 128, "2-1-0-3", 348, []float64{0.8, 1.6, 3.1, 94.5}},
		{"F4", hydra, 128, "1-3-0-2", 388, []float64{5.5, 0, 6.3, 88.2}},
		{"F4", hydra, 128, "3-1-0-2", 164, []float64{5.5, 0, 6.3, 88.2}},
		{"F4", hydra, 128, "1-3-2-0", 384, []float64{5.5, 6.3, 12.6, 75.6}},
		{"F4", hydra, 128, "3-2-1-0", 152, []float64{5.5, 6.3, 12.6, 75.6}},
		// Figure 5: LUMI, Alltoall, 16 procs/comm.
		{"F5", lumi, 16, "0-1-2-3-4", 75, []float64{0, 0, 0, 0, 100}},
		{"F5", lumi, 16, "1-2-3-0-4", 60, []float64{0, 6.7, 40, 53.3, 0}},
		{"F5", lumi, 16, "3-2-1-4-0", 38, []float64{0, 6.7, 40, 53.3, 0}},
		{"F5", lumi, 16, "3-4-0-1-2", 30, []float64{46.7, 53.3, 0, 0, 0}},
		{"F5", lumi, 16, "4-3-2-1-0", 16, []float64{46.7, 53.3, 0, 0, 0}},
		// Figure 6: Hydra, Allreduce, 64 procs/comm.
		{"F6", hydra, 64, "0-1-2-3", 252, []float64{0, 1.6, 3.2, 95.2}},
		{"F6", hydra, 64, "2-1-0-3", 172, []float64{0, 1.6, 3.2, 95.2}},
		{"F6", hydra, 64, "1-3-0-2", 192, []float64{11.1, 0, 12.7, 76.2}},
		{"F6", hydra, 64, "3-1-0-2", 80, []float64{11.1, 0, 12.7, 76.2}},
		{"F6", hydra, 64, "1-3-2-0", 190, []float64{11.1, 12.7, 25.4, 50.8}},
		{"F6", hydra, 64, "3-2-1-0", 74, []float64{11.1, 12.7, 25.4, 50.8}},
		// Figure 7: LUMI, Allgather, 256 procs/comm.
		{"F7", lumi, 256, "0-1-2-3-4", 1275, []float64{0, 0.4, 2.4, 3.1, 94.1}},
		{"F7", lumi, 256, "1-2-3-0-4", 1035, []float64{0, 0.4, 2.4, 3.1, 94.1}},
		{"F7", lumi, 256, "3-4-0-1-2", 555, []float64{2.7, 3.1, 0, 0, 94.1}},
		{"F7", lumi, 256, "3-2-1-4-0", 669, []float64{2.7, 3.1, 18.8, 25.1, 50.2}},
		{"F7", lumi, 256, "4-3-2-1-0", 305, []float64{2.7, 3.1, 18.8, 25.1, 50.2}},
	}
	for _, c := range cases {
		got := mustChar(t, c.h, c.order, c.commSize)
		if got.RingCost != c.ringCost {
			t.Errorf("%s %s: ring cost %d, want %d", c.name, c.order, got.RingCost, c.ringCost)
		}
		if !approxEq(got.Pairs, c.pairs) {
			t.Errorf("%s %s: pairs %v, want %v", c.name, c.order, got.Pairs, c.pairs)
		}
	}
}

func TestRingCostBounds(t *testing.T) {
	// For any placement of n distinct cores: n-1 ≤ ring cost ≤ (n-1)·depth.
	h := topology.MustNew(4, 2, 2, 4)
	for _, sigma := range perm.All(4) {
		for _, size := range []int{2, 4, 8, 16, 32} {
			p, err := FirstComm(h, sigma, size)
			if err != nil {
				t.Fatal(err)
			}
			rc := RingCost(p)
			if rc < size-1 || rc > (size-1)*h.Depth() {
				t.Errorf("sigma=%v size=%d: ring cost %d outside [%d, %d]",
					sigma, size, rc, size-1, (size-1)*h.Depth())
			}
		}
	}
}

func TestPairsSumTo100(t *testing.T) {
	h := topology.MustNew(4, 2, 2, 4)
	for _, sigma := range perm.All(4) {
		for _, size := range []int{2, 4, 16, 64} {
			p, err := FirstComm(h, sigma, size)
			if err != nil {
				t.Fatal(err)
			}
			pairs := PairsPerLevel(p)
			sum := 0.0
			for _, v := range pairs {
				sum += v
			}
			if math.Abs(sum-100) > 1e-9 {
				t.Errorf("sigma=%v size=%d: pair percentages sum to %f", sigma, size, sum)
			}
		}
	}
}

func TestPairsSingleton(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	p, err := FirstComm(h, []int{2, 1, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range PairsPerLevel(p) {
		if v != 0 {
			t.Errorf("singleton communicator has nonzero pair percentage %v", v)
		}
	}
	if RingCost(p) != 0 {
		t.Error("singleton ring cost nonzero")
	}
}

func TestCommPlacements(t *testing.T) {
	// Figure 2, order [2,0,1]: communicators {0..3} on node0/socket0,
	// {4..7} on node1/socket0, {8..11} on node0/socket1, {12..15} node1/socket1.
	h := topology.MustNew(2, 2, 4)
	sigma := []int{2, 0, 1}
	wantCores := [][]int{
		{0, 1, 2, 3},
		{8, 9, 10, 11},
		{4, 5, 6, 7},
		{12, 13, 14, 15},
	}
	for idx, want := range wantCores {
		p, err := Comm(h, sigma, 4, idx)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range p.Cores {
			if c != want[i] {
				t.Errorf("comm %d cores = %v, want %v", idx, p.Cores, want)
				break
			}
		}
	}
}

func TestCommErrors(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	if _, err := Comm(h, []int{2, 1, 0}, 3, 0); err == nil {
		t.Error("non-dividing comm size accepted")
	}
	if _, err := Comm(h, []int{2, 1, 0}, 4, 4); err == nil {
		t.Error("out-of-range comm index accepted")
	}
	if _, err := Comm(h, []int{0, 0, 1}, 4, 0); err == nil {
		t.Error("invalid order accepted")
	}
	if _, err := FirstComm(h, []int{2, 1, 0}, 0); err == nil {
		t.Error("zero comm size accepted")
	}
	if _, err := FirstComm(h, []int{2, 1, 0}, 17); err == nil {
		t.Error("oversized comm accepted")
	}
}

func TestCharacterizationString(t *testing.T) {
	h := topology.MustNew(16, 2, 2, 8)
	c := mustChar(t, h, "0-1-2-3", 16)
	want := "0-1-2-3 (60 - 0.0, 0.0, 0.0, 100.0)"
	if got := c.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestSpreadScore(t *testing.T) {
	h := topology.MustNew(16, 2, 2, 8)
	packed := mustChar(t, h, "3-2-1-0", 16)
	spread := mustChar(t, h, "0-1-2-3", 16)
	mid := mustChar(t, h, "2-1-0-3", 16)
	if spread.SpreadScore() != 1 {
		t.Errorf("fully spread score = %f, want 1", spread.SpreadScore())
	}
	if !(packed.SpreadScore() < mid.SpreadScore() && mid.SpreadScore() <= spread.SpreadScore()) {
		t.Errorf("spread ordering violated: packed=%f mid=%f spread=%f",
			packed.SpreadScore(), mid.SpreadScore(), spread.SpreadScore())
	}
}

func TestEquivalenceClasses(t *testing.T) {
	// §3.3: on ⟦2,2,4⟧ with comms of 4, orders [2,0,1] and [2,1,0] are
	// similar (same ring cost, same pairs); [0,1,2] and [1,0,2] are not
	// (same pairs, different ring cost).
	h := topology.MustNew(2, 2, 4)
	classes, err := EquivalenceClasses(h, perm.All(3), 4)
	if err != nil {
		t.Fatal(err)
	}
	classOf := map[string]int{}
	for i, cls := range classes {
		for _, c := range cls {
			classOf[perm.Format(c.Order)] = i
		}
	}
	if classOf["2-0-1"] != classOf["2-1-0"] {
		t.Error("[2,0,1] and [2,1,0] should be equivalent")
	}
	if classOf["0-1-2"] == classOf["1-0-2"] {
		t.Error("[0,1,2] and [1,0,2] should be distinguished by ring cost")
	}
	total := 0
	for _, cls := range classes {
		total += len(cls)
	}
	if total != 6 {
		t.Errorf("classes cover %d orders, want 6", total)
	}
}

func TestSamePairsLengthMismatch(t *testing.T) {
	a := Characterization{Pairs: []float64{100, 0}}
	b := Characterization{Pairs: []float64{100, 0, 0}}
	if a.SamePairs(b) {
		t.Error("different depths reported as same pairs")
	}
}

func BenchmarkCharacterize(b *testing.B) {
	h := topology.MustNew(16, 2, 4, 2, 8)
	sigma := []int{3, 2, 1, 4, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Characterize(h, sigma, 256); err != nil {
			b.Fatal(err)
		}
	}
}
