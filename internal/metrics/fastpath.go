// Closed-form §3.3 kernels: ring cost and pairs-per-level computed
// directly from the arities and σ, without materializing the reorder
// table or running the O(n²) pair loop.
//
// Both kernels exploit the structure of the first subcommunicator, which
// occupies the reordered ranks [0, m). In the permuted mixed-radix system
// (position 0 = level σ(0), the fastest-varying), stepping from reordered
// rank r to r+1 changes exactly the digits touched by the carry chain:
// positions 0…t wrap or increment, where t is the first position whose
// digit is below its radix. The hierarchy level at which the two cores
// first differ is therefore min(σ(0), …, σ(t)), and counting ranks by
// carry-chain length is a matter of divisibility — floor((m-1)/P_t)
// ranks carry through the first t positions, where P_t is the product of
// the first t permuted radices. That turns the ring cost into an O(k)
// sum.
//
// Pair counts per level reduce to counting rank pairs that agree on a
// subset Q of permuted digit positions: pairs crossing no deeper than
// level l are exactly those agreeing on every position j with σ(j) < l.
// The number of ordered pairs (r, s) ∈ [0, m)² agreeing on Q is computed
// by a digit DP over the permuted system that tracks whether r and s are
// still clamped to the digits of m-1, giving O(k) per level and O(k²)
// overall — independent of the hierarchy size.
//
// The table-based path (CharacterizeTable, FirstComm + RingCost +
// PairsPerLevel) remains the reference implementation: differential
// tests prove the two agree on randomized hierarchies, and degraded or
// masked placements — which are not a clean mixed-radix space — must
// still use the tables.

package metrics

import (
	"fmt"
	"strconv"

	"repro/internal/mixedradix"
	"repro/internal/topology"
)

// crossingsPerLevel returns, for each hierarchy level l (outermost = 0),
// how many consecutive reordered-rank pairs (r, r+1) with r ∈ [0, m-1)
// first differ at level l. The ring cost follows as
// Σ_l counts[l] · (k - l).
func crossingsPerLevel(ar, sigma []int, m int) []int64 {
	k := len(ar)
	out := make([]int64, k)
	if m <= 1 {
		return out
	}
	minLevel := k
	pref := 1               // P_t: product of the first t permuted radices
	carries := int64(m - 1) // ranks whose carry chain reaches position t
	for t := 0; t < k && carries > 0; t++ {
		if sigma[t] < minLevel {
			minLevel = sigma[t]
		}
		pref *= ar[sigma[t]]
		next := int64((m - 1) / pref)
		out[minLevel] += carries - next
		carries = next
	}
	return out
}

// ringCostClosed is the closed-form §3.3 ring cost of the first
// subcommunicator of size m.
func ringCostClosed(ar, sigma []int, m int) int {
	k := len(ar)
	cost := int64(0)
	for l, c := range crossingsPerLevel(ar, sigma, m) {
		cost += c * int64(k-l)
	}
	return int(cost)
}

// pairCountsPerLevel returns, indexed like PairsPerLevel (element 0 the
// innermost level), the number of unordered process pairs of the first
// subcommunicator of size m whose first differing coordinate is at each
// level. The counts sum to m·(m-1)/2.
func pairCountsPerLevel(ar, sigma []int, m int) []int64 {
	k := len(ar)
	// Permuted radices and the digits of the inclusive bound m-1.
	b := make([]int64, k)
	g := make([]int64, k)
	rem := m - 1
	for j := 0; j < k; j++ {
		b[j] = int64(ar[sigma[j]])
		g[j] = int64(rem) % b[j]
		rem /= int(b[j])
	}
	// E[l] = unordered pairs of distinct ranks in [0, m) agreeing on every
	// permuted position j with σ(j) < l. E[0] = C(m, 2); E[k] = 0.
	E := make([]int64, k+1)
	for l := 0; l <= k; l++ {
		E[l] = (agreeingOrderedPairs(b, g, sigma, l) - int64(m)) / 2
	}
	out := make([]int64, k)
	for j := 0; j < k; j++ {
		l := k - 1 - j // first-diff level for output index j
		out[j] = E[l] - E[l+1]
	}
	return out
}

// agreeingOrderedPairs counts the ordered pairs (r, s) ∈ [0, m)² whose
// permuted digits match at every position j with σ(j) < level, via a
// most-significant-first digit DP against the inclusive bound m-1 (digits
// g, radices b). State: both prefixes clamped to the bound (tt), exactly
// one clamped (tf, counted one-sided — the transposed states mirror it),
// neither (ff).
func agreeingOrderedPairs(b, g []int64, sigma []int, level int) int64 {
	tt, tf, ff := int64(1), int64(0), int64(0)
	for j := len(b) - 1; j >= 0; j-- {
		bj, gj := b[j], g[j]
		if sigma[j] < level { // digits must match: tt, tf unchanged
			ff = ff*bj + tt*gj + 2*tf*gj
		} else { // digits independent: tt unchanged
			tf, ff = tt*gj+tf*bj, tt*gj*gj+2*tf*gj*bj+ff*bj*bj
		}
	}
	return tt + 2*tf + ff
}

// SearchSignature is the integer-exact placement fingerprint the order
// search prunes with: two orders with equal signatures place the first
// subcommunicator identically level by level (same §3.3 ring cost and
// pair percentages, resolved per level rather than aggregated) and, when
// the optional components are included, share the ring traversal and the
// whole-world tiling too. It is computed in O(k²) from the arities alone.
type SearchSignature struct {
	// CommPairs[j] counts the communicator's process pairs first differing
	// j levels above the innermost (the integer numerators of
	// PairsPerLevel). Always present: it pins down the per-level domain
	// occupancy profile of the communicator.
	CommPairs []int64
	// CommCross[l] counts consecutive-rank boundary crossings of the first
	// subcommunicator at hierarchy level l (outermost first). The ring
	// cost is Σ_l CommCross[l]·(k-l). Only ring-schedule collectives
	// (allgather, allreduce) depend on the traversal, so the component is
	// optional (SignatureOpts.Ring); dropping it merges orders whose
	// communicators occupy the same domains in a different ring order.
	CommCross []int64
	// WorldCross[l] is CommCross for the whole world enumeration,
	// capturing how the full rank sequence — hence every subcommunicator
	// block — tiles the hierarchy (SignatureOpts.World).
	WorldCross []int64
}

// SignatureOpts selects the optional SearchSignature components. The
// zero value — pair counts only — is the coarsest (fastest) signature;
// each enabled component refines the classes, never coarsens them.
type SignatureOpts struct {
	// Ring includes the communicator's per-level crossing counts. Needed
	// when the predicted schedule walks the communicator as a ring
	// (allgather, allreduce); irrelevant for pairwise exchanges whose
	// traffic depends only on domain occupancy (alltoall).
	Ring bool
	// World includes the whole-world crossing profile. Needed when every
	// subcommunicator runs simultaneously and the signature must pin down
	// the full tiling, not just the first block.
	World bool
}

// Key renders the signature as a compact map key.
func (s SearchSignature) Key() string {
	buf := make([]byte, 0, 16*(len(s.CommCross)+len(s.CommPairs)+len(s.WorldCross)))
	for _, part := range [][]int64{s.CommPairs, s.CommCross, s.WorldCross} {
		for _, v := range part {
			buf = strconv.AppendInt(buf, v, 36)
			buf = append(buf, ',')
		}
		buf = append(buf, '|')
	}
	return string(buf)
}

// OrderSignature computes the SearchSignature of an order for the first
// subcommunicator of size commSize, with the optional components selected
// by opts.
func OrderSignature(h topology.Hierarchy, sigma []int, commSize int, opts SignatureOpts) (SearchSignature, error) {
	ar := h.Arities()
	if err := mixedradix.CheckOrder(ar, sigma); err != nil {
		return SearchSignature{}, err
	}
	n := h.Size()
	if commSize <= 0 || commSize > n {
		return SearchSignature{}, fmt.Errorf("metrics: communicator size %d out of range (0, %d]", commSize, n)
	}
	sig := SearchSignature{
		CommPairs: pairCountsPerLevel(ar, sigma, commSize),
	}
	if opts.Ring {
		sig.CommCross = crossingsPerLevel(ar, sigma, commSize)
	}
	if opts.World {
		sig.WorldCross = crossingsPerLevel(ar, sigma, n)
	}
	return sig, nil
}

// CharacterizeTable computes Characterize through the reference path: it
// materializes the placement with the reorder table and runs the O(n²)
// pair loop. It exists as the differential-test oracle and for callers
// whose placements are not a clean mixed-radix space (degraded or masked
// hierarchies must take this route); everything else should call
// Characterize, which uses the closed-form kernels.
func CharacterizeTable(h topology.Hierarchy, sigma []int, commSize int) (Characterization, error) {
	p, err := FirstComm(h, sigma, commSize)
	if err != nil {
		return Characterization{}, err
	}
	return Characterization{
		Order:    append([]int(nil), sigma...),
		RingCost: RingCost(p),
		Pairs:    PairsPerLevel(p),
	}, nil
}
