package metrics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/perm"
	"repro/internal/topology"
)

// TestFastPathDifferential proves the closed-form kernels equal the
// table-based reference on well over 1000 randomized (hierarchy, σ,
// commSize) cases, including non-dividing communicator sizes, commSize 1
// and commSize = world.
func TestFastPathDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := 0
	for iter := 0; iter < 400; iter++ {
		depth := 2 + rng.Intn(5) // 2..6
		ar := make([]int, depth)
		for i := range ar {
			ar[i] = 2 + rng.Intn(3) // 2..4
		}
		h, err := topology.New(ar...)
		if err != nil {
			t.Fatal(err)
		}
		n := h.Size()
		for trial := 0; trial < 4; trial++ {
			sigma := rng.Perm(depth)
			commSize := 1 + rng.Intn(n)
			switch trial {
			case 2:
				commSize = 1
			case 3:
				commSize = n
			}
			fast, err := Characterize(h, sigma, commSize)
			if err != nil {
				t.Fatalf("fast Characterize(%v, %v, %d): %v", ar, sigma, commSize, err)
			}
			table, err := CharacterizeTable(h, sigma, commSize)
			if err != nil {
				t.Fatalf("table Characterize(%v, %v, %d): %v", ar, sigma, commSize, err)
			}
			if fast.RingCost != table.RingCost {
				t.Fatalf("ring cost mismatch for h=%v sigma=%v m=%d: fast %d, table %d",
					ar, sigma, commSize, fast.RingCost, table.RingCost)
			}
			if len(fast.Pairs) != len(table.Pairs) {
				t.Fatalf("pairs length mismatch for h=%v sigma=%v m=%d", ar, sigma, commSize)
			}
			for j := range fast.Pairs {
				if math.Abs(fast.Pairs[j]-table.Pairs[j]) > 1e-9 {
					t.Fatalf("pairs[%d] mismatch for h=%v sigma=%v m=%d: fast %v, table %v",
						j, ar, sigma, commSize, fast.Pairs, table.Pairs)
				}
			}
			cases++
		}
	}
	if cases < 1000 {
		t.Fatalf("only %d differential cases, want >= 1000", cases)
	}
}

// TestFastPathAllOrdersSmall sweeps every order of a few fixed
// hierarchies so the kernels are exercised on the exact inputs of the
// paper's figures, not just random draws.
func TestFastPathAllOrdersSmall(t *testing.T) {
	for _, tc := range []struct {
		ar   []int
		comm int
	}{
		{[]int{2, 2, 4}, 4},
		{[]int{2, 2, 4}, 3}, // non-dividing size
		{[]int{16, 2, 2, 8}, 16},
		{[]int{3, 2, 2}, 6},
	} {
		h := topology.MustNew(tc.ar...)
		for _, sigma := range perm.All(len(tc.ar)) {
			fast, err := Characterize(h, sigma, tc.comm)
			if err != nil {
				t.Fatal(err)
			}
			table, err := CharacterizeTable(h, sigma, tc.comm)
			if err != nil {
				t.Fatal(err)
			}
			if fast.RingCost != table.RingCost {
				t.Errorf("h=%v sigma=%v: ring cost fast %d table %d", tc.ar, sigma, fast.RingCost, table.RingCost)
			}
			for j := range fast.Pairs {
				if math.Abs(fast.Pairs[j]-table.Pairs[j]) > 1e-9 {
					t.Errorf("h=%v sigma=%v: pairs fast %v table %v", tc.ar, sigma, fast.Pairs, table.Pairs)
					break
				}
			}
		}
	}
}

// TestOrderSignatureRefinesClasses checks the pruning signature is sound
// with respect to §3.3: orders with equal signatures always land in the
// same (ring cost, pair percentages) equivalence class.
func TestOrderSignatureRefinesClasses(t *testing.T) {
	h := topology.MustNew(2, 2, 2, 2)
	orders := perm.All(4)
	byKey := map[string][]int{}
	for i, sigma := range orders {
		sig, err := OrderSignature(h, sigma, 4, SignatureOpts{Ring: true, World: true})
		if err != nil {
			t.Fatal(err)
		}
		byKey[sig.Key()] = append(byKey[sig.Key()], i)
	}
	if len(byKey) >= len(orders) {
		t.Fatalf("signature produced no grouping: %d keys for %d orders", len(byKey), len(orders))
	}
	for _, members := range byKey {
		first, err := Characterize(h, orders[members[0]], 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range members[1:] {
			ch, err := Characterize(h, orders[m], 4)
			if err != nil {
				t.Fatal(err)
			}
			if ch.RingCost != first.RingCost || !ch.SamePairs(first) {
				t.Fatalf("orders %v and %v share a signature but differ in class",
					orders[members[0]], orders[m])
			}
		}
	}
}

// TestOrderSignatureErrors mirrors Characterize's validation.
func TestOrderSignatureErrors(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	if _, err := OrderSignature(h, []int{0, 1}, 4, SignatureOpts{}); err == nil {
		t.Fatal("want error for wrong-length order")
	}
	if _, err := OrderSignature(h, []int{0, 1, 2}, 0, SignatureOpts{}); err == nil {
		t.Fatal("want error for zero communicator size")
	}
	if _, err := OrderSignature(h, []int{0, 1, 2}, 17, SignatureOpts{}); err == nil {
		t.Fatal("want error for oversized communicator")
	}
}

func BenchmarkCharacterizeFast(b *testing.B) {
	h := topology.MustNew(16, 2, 4, 2, 8)
	sigma := []int{3, 2, 1, 4, 0}
	for i := 0; i < b.N; i++ {
		if _, err := Characterize(h, sigma, 256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCharacterizeTable(b *testing.B) {
	h := topology.MustNew(16, 2, 4, 2, 8)
	sigma := []int{3, 2, 1, 4, 0}
	for i := 0; i < b.N; i++ {
		if _, err := CharacterizeTable(h, sigma, 256); err != nil {
			b.Fatal(err)
		}
	}
}
