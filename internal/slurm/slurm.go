// Package slurm models the Slurm process-placement features the paper
// compares against and extends (§3.4): the --distribution option (block and
// cyclic policies at node and socket level, plus plane=n), and the
// --cpu-bind=map_cpu core lists generated from a hierarchy and an order by
// the paper's Algorithm 3, which generalizes --distribution to every
// hierarchy level including fake ones.
package slurm

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mixedradix"
	"repro/internal/perm"
	"repro/internal/topology"
)

// Policy is a per-level distribution policy.
type Policy int

// Available policies. Plane is only valid at the node level.
const (
	Block Policy = iota
	Cyclic
	Plane
)

func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	case Plane:
		return "plane"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Distribution is a parsed --distribution value.
type Distribution struct {
	Node      Policy
	Socket    Policy
	PlaneSize int // used when Node == Plane
}

// ErrBadDistribution reports an unparsable --distribution value.
var ErrBadDistribution = errors.New("slurm: invalid --distribution value")

// ParseDistribution reads values like "block:cyclic", "cyclic", or
// "plane=4". A missing socket policy defaults to cyclic (Slurm's default
// second-level distribution is cyclic on most sites; the paper's Hydra
// default is block:cyclic).
func ParseDistribution(s string) (Distribution, error) {
	t := strings.TrimSpace(strings.ToLower(s))
	if strings.HasPrefix(t, "plane=") {
		n, err := strconv.Atoi(strings.TrimPrefix(t, "plane="))
		if err != nil || n <= 0 {
			return Distribution{}, fmt.Errorf("%w: %q", ErrBadDistribution, s)
		}
		return Distribution{Node: Plane, PlaneSize: n}, nil
	}
	parts := strings.SplitN(t, ":", 2)
	pol := func(x string) (Policy, error) {
		switch x {
		case "block":
			return Block, nil
		case "cyclic":
			return Cyclic, nil
		default:
			return 0, fmt.Errorf("%w: %q", ErrBadDistribution, s)
		}
	}
	node, err := pol(parts[0])
	if err != nil {
		return Distribution{}, err
	}
	socket := Cyclic
	if len(parts) == 2 {
		socket, err = pol(parts[1])
		if err != nil {
			return Distribution{}, err
		}
	}
	return Distribution{Node: node, Socket: socket}, nil
}

// String renders the value as passed to --distribution.
func (d Distribution) String() string {
	if d.Node == Plane {
		return fmt.Sprintf("plane=%d", d.PlaneSize)
	}
	return d.Node.String() + ":" + d.Socket.String()
}

// Binding computes the rank→core binding the distribution produces on a
// hierarchy whose level 0 is the node and level 1 the socket (deeper levels
// are filled in their initial order, as Slurm does). One rank per core.
func (d Distribution) Binding(h topology.Hierarchy) ([]int, error) {
	if h.Depth() < 2 {
		return nil, fmt.Errorf("slurm: need at least node and core levels, got %s", h)
	}
	ar := h.Arities()
	nodes := ar[0]
	coresPerNode := h.Size() / nodes
	sockets := 1
	if h.Depth() >= 3 {
		sockets = ar[1]
	}
	coresPerSocket := coresPerNode / sockets
	n := h.Size()
	binding := make([]int, n)

	inNode := func(idx int) int {
		// Map the idx-th rank assigned to a node to a core offset using the
		// socket policy.
		switch d.Socket {
		case Block:
			return idx
		case Cyclic:
			s := idx % sockets
			return s*coresPerSocket + idx/sockets
		default:
			panic("slurm: bad socket policy")
		}
	}

	switch d.Node {
	case Block:
		for r := 0; r < n; r++ {
			node := r / coresPerNode
			binding[r] = node*coresPerNode + inNode(r%coresPerNode)
		}
	case Cyclic:
		for r := 0; r < n; r++ {
			node := r % nodes
			binding[r] = node*coresPerNode + inNode(r/nodes)
		}
	case Plane:
		if d.PlaneSize <= 0 {
			return nil, fmt.Errorf("%w: plane size %d", ErrBadDistribution, d.PlaneSize)
		}
		next := make([]int, nodes) // next free in-node slot per node
		for r := 0; r < n; r++ {
			blockIdx := r / d.PlaneSize
			node := blockIdx % nodes
			binding[r] = node*coresPerNode + inNode(next[node])
			next[node]++
		}
	default:
		return nil, fmt.Errorf("%w: node policy %v", ErrBadDistribution, d.Node)
	}
	return binding, nil
}

// DistributionForOrder searches the --distribution values able to reproduce
// the mapping of order sigma on hierarchy h (as in the Figure 2 captions).
// It returns the matching value and true, or zero and false when the order
// cannot be expressed with --distribution (e.g. order [1,0,2]).
func DistributionForOrder(h topology.Hierarchy, sigma []int) (Distribution, bool) {
	ro, err := mixedradix.NewReorderer(h.Arities(), sigma)
	if err != nil {
		return Distribution{}, false
	}
	want := ro.InverseTable() // binding of the reordered world
	var candidates []Distribution
	for _, np := range []Policy{Block, Cyclic} {
		for _, sp := range []Policy{Block, Cyclic} {
			candidates = append(candidates, Distribution{Node: np, Socket: sp})
		}
	}
	coresPerNode := h.Size() / h.Arities()[0]
	// Slurm's plane distribution fills within a node in block order; there
	// is no plane×cyclic combination.
	for plane := 1; plane <= coresPerNode; plane++ {
		if coresPerNode%plane == 0 {
			candidates = append(candidates, Distribution{Node: Plane, Socket: Block, PlaneSize: plane})
		}
	}
	for _, d := range candidates {
		got, err := d.Binding(h)
		if err != nil {
			continue
		}
		if equalInts(got, want) {
			return d, true
		}
	}
	return Distribution{}, false
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// MapCPU implements the paper's Algorithm 3: given the hierarchy of one
// compute node, an order sigma, and the number n of cores to use, it
// returns the list of core physical IDs to pass to --cpu-bind=map_cpu.
// Position r of the list is the core that will host MPI rank r (per node).
func MapCPU(nodeHierarchy topology.Hierarchy, sigma []int, n int) ([]int, error) {
	h := nodeHierarchy.Arities()
	if err := mixedradix.CheckHierarchy(h); err != nil {
		return nil, err
	}
	if err := perm.Check(sigma); err != nil {
		return nil, err
	}
	if len(sigma) != len(h) {
		return nil, fmt.Errorf("slurm: order depth %d does not match hierarchy depth %d", len(sigma), len(h))
	}
	total := mixedradix.Size(h)
	if n <= 0 || n > total {
		return nil, fmt.Errorf("slurm: cannot select %d cores from %d", n, total)
	}
	l := make([]int, n)
	for c := 0; c < total; c++ {
		r := mixedradix.NewRank(h, c, sigma)
		if r < n {
			l[r] = c
		}
	}
	return l, nil
}

// FormatMapCPU renders the list as the value of --cpu-bind=map_cpu.
func FormatMapCPU(list []int) string {
	parts := make([]string, len(list))
	for i, c := range list {
		parts[i] = strconv.Itoa(c)
	}
	return "map_cpu:" + strings.Join(parts, ",")
}

// SelectionSet returns the sorted set of cores of a map_cpu list; two
// orders producing the same set place ranks on identical cores, differing
// only in rank numbering (§3.4 keeps such duplicates as distinct rank
// mappings).
func SelectionSet(list []int) []int {
	out := append([]int(nil), list...)
	sort.Ints(out)
	return out
}

// InducedHierarchy computes the hierarchy formed by a set of selected cores
// of the node (§3.4: "the hierarchy used for the second step has to match
// the hierarchy formed by the set of cores chosen in the first step").
// The selection must be structurally uniform: every used component of a
// level must contain the same number of used sub-components with identical
// sub-structure. Levels with a single used component are dropped. The
// returned arities may be empty when only one core is selected.
func InducedHierarchy(nodeHierarchy topology.Hierarchy, cores []int) ([]int, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("slurm: empty core selection")
	}
	seen := map[int]bool{}
	coords := make([][]int, 0, len(cores))
	for _, c := range cores {
		if c < 0 || c >= nodeHierarchy.Size() {
			return nil, fmt.Errorf("slurm: core %d out of range", c)
		}
		if seen[c] {
			return nil, fmt.Errorf("slurm: duplicate core %d in selection", c)
		}
		seen[c] = true
		coords = append(coords, nodeHierarchy.Coordinates(c))
	}
	lcs, err := induced(coords, 0, nodeHierarchy.Depth())
	if err != nil {
		return nil, err
	}
	if len(lcs) == 0 {
		return nil, nil
	}
	out := make([]int, len(lcs))
	for i, lc := range lcs {
		out[i] = lc.count
	}
	return out, nil
}

// levelCount is one level of an induced hierarchy, remembering which
// original level it came from so that structurally different selections
// with coincidentally equal arities are still told apart.
type levelCount struct {
	level int
	count int
}

// induced recursively computes the used (level, arity) pairs of the
// selection.
func induced(coords [][]int, level, depth int) ([]levelCount, error) {
	if level == depth {
		return nil, nil
	}
	groups := map[int][][]int{}
	var keys []int
	for _, c := range coords {
		k := c[level]
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], c)
	}
	sort.Ints(keys)
	var sub []levelCount
	for i, k := range keys {
		g := groups[k]
		if len(g) != len(groups[keys[0]]) {
			return nil, fmt.Errorf("slurm: non-uniform selection at level %d", level)
		}
		s, err := induced(g, level+1, depth)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			sub = s
		} else if !equalLevelCounts(s, sub) {
			return nil, fmt.Errorf("slurm: non-uniform sub-structure at level %d", level)
		}
	}
	if len(keys) == 1 {
		return sub, nil
	}
	return append([]levelCount{{level: level, count: len(keys)}}, sub...), nil
}

func equalLevelCounts(a, b []levelCount) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
