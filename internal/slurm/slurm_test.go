package slurm

import (
	"reflect"
	"testing"

	"repro/internal/mixedradix"
	"repro/internal/perm"
	"repro/internal/topology"
)

func TestParseDistribution(t *testing.T) {
	cases := []struct {
		in   string
		want Distribution
	}{
		{"block:block", Distribution{Node: Block, Socket: Block}},
		{"block:cyclic", Distribution{Node: Block, Socket: Cyclic}},
		{"cyclic:cyclic", Distribution{Node: Cyclic, Socket: Cyclic}},
		{"cyclic", Distribution{Node: Cyclic, Socket: Cyclic}},
		{"plane=4", Distribution{Node: Plane, PlaneSize: 4}},
		{"  BLOCK:Block ", Distribution{Node: Block, Socket: Block}},
	}
	for _, c := range cases {
		got, err := ParseDistribution(c.in)
		if err != nil {
			t.Errorf("ParseDistribution(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseDistribution(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "foo", "block:foo", "plane=", "plane=0", "plane=x"} {
		if _, err := ParseDistribution(bad); err == nil {
			t.Errorf("ParseDistribution(%q) should fail", bad)
		}
	}
}

func TestDistributionString(t *testing.T) {
	d := Distribution{Node: Plane, PlaneSize: 8}
	if d.String() != "plane=8" {
		t.Errorf("String = %q", d.String())
	}
	d = Distribution{Node: Block, Socket: Cyclic}
	if d.String() != "block:cyclic" {
		t.Errorf("String = %q", d.String())
	}
}

// Figure 2 captions: each achievable order maps to a --distribution value;
// order [1,0,2] maps to none.
func TestFigure2SlurmCaptions(t *testing.T) {
	h := topology.MustNew(2, 2, 4)
	want := map[string]string{
		"0-1-2": "cyclic:cyclic",
		"0-2-1": "cyclic:block",
		"1-2-0": "block:cyclic",
		"2-0-1": "plane=4",
		"2-1-0": "block:block",
	}
	for name, dist := range want {
		sigma, err := perm.Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := DistributionForOrder(h, sigma)
		if !ok {
			t.Errorf("order %s: no distribution found, want %s", name, dist)
			continue
		}
		if got.String() != dist {
			t.Errorf("order %s: distribution %s, want %s", name, got, dist)
		}
	}
	sigma := []int{1, 0, 2}
	if d, ok := DistributionForOrder(h, sigma); ok {
		t.Errorf("order [1,0,2] should not be expressible, got %s", d)
	}
}

// The paper's §4.2 statement: Hydra's Slurm default block:cyclic equals
// order [1,3,2,0] on ⟦nodes,2,2,8⟧.
func TestHydraDefaultOrder(t *testing.T) {
	h := topology.MustNew(4, 2, 2, 8) // small Hydra
	d := Distribution{Node: Block, Socket: Cyclic}
	got, err := d.Binding(h)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := mixedradix.NewReorderer(h.Arities(), []int{1, 3, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ro.InverseTable()) {
		t.Error("block:cyclic != order [1,3,2,0] on Hydra-shaped hierarchy")
	}
}

// LUMI's default block:block equals the identity order [4,3,2,1,0].
func TestLUMIDefaultOrder(t *testing.T) {
	h := topology.MustNew(2, 2, 4, 2, 8)
	d := Distribution{Node: Block, Socket: Block}
	got, err := d.Binding(h)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := mixedradix.NewReorderer(h.Arities(), []int{4, 3, 2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ro.InverseTable()) {
		t.Error("block:block != identity order on LUMI-shaped hierarchy")
	}
}

func TestBindingIsPermutation(t *testing.T) {
	h := topology.MustNew(4, 2, 2, 4)
	dists := []Distribution{
		{Node: Block, Socket: Block},
		{Node: Block, Socket: Cyclic},
		{Node: Cyclic, Socket: Block},
		{Node: Cyclic, Socket: Cyclic},
		{Node: Plane, Socket: Block, PlaneSize: 4},
		{Node: Plane, Socket: Cyclic, PlaneSize: 2},
	}
	for _, d := range dists {
		b, err := d.Binding(h)
		if err != nil {
			t.Fatal(err)
		}
		if !perm.IsPermutation(b) {
			t.Errorf("%s: binding is not a bijection: %v", d, b)
		}
	}
}

func TestBindingErrors(t *testing.T) {
	h := topology.MustNew(4)
	if _, err := (Distribution{Node: Block, Socket: Block}).Binding(h); err == nil {
		t.Error("depth-1 hierarchy accepted")
	}
	h2 := topology.MustNew(2, 2, 4)
	if _, err := (Distribution{Node: Plane}).Binding(h2); err == nil {
		t.Error("plane without size accepted")
	}
}

// Algorithm 3 examples from §4.3 (Figure 9, LUMI node ⟦2,4,2,8⟧):
// with 2 processes, order [0,1,2,3] selects the first core of each socket;
// with 8, orders [0,1,2,3] and [1,0,2,3] select the first core of each NUMA.
func TestMapCPUFigure9Examples(t *testing.T) {
	node := topology.MustNew(2, 4, 2, 8)
	l, err := MapCPU(node, []int{0, 1, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l, []int{0, 64}) {
		t.Errorf("2-proc [0,1,2,3] = %v, want [0 64]", l)
	}
	for _, sigma := range [][]int{{0, 1, 2, 3}, {1, 0, 2, 3}} {
		l, err := MapCPU(node, sigma, 8)
		if err != nil {
			t.Fatal(err)
		}
		want := []int{0, 16, 32, 48, 64, 80, 96, 112}
		if !reflect.DeepEqual(SelectionSet(l), want) {
			t.Errorf("8-proc %v selection = %v, want %v", sigma, SelectionSet(l), want)
		}
	}
	// Figure 9's 4-proc [2,1,0,3] uses one core per L3 of the two first
	// NUMA domains of socket 0: cores 0, 8, 16, 24.
	l, err = MapCPU(node, []int{2, 1, 0, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(SelectionSet(l), []int{0, 8, 16, 24}) {
		t.Errorf("4-proc [2,1,0,3] selection = %v", SelectionSet(l))
	}
}

func TestMapCPUFullSelectionIsPermutation(t *testing.T) {
	node := topology.MustNew(2, 4, 2, 8)
	for _, sigma := range perm.All(4) {
		l, err := MapCPU(node, sigma, node.Size())
		if err != nil {
			t.Fatal(err)
		}
		if !perm.IsPermutation(l) {
			t.Errorf("sigma=%v: full map_cpu list is not a permutation", sigma)
		}
	}
}

func TestMapCPUEachCoreOnce(t *testing.T) {
	node := topology.MustNew(2, 4, 2, 8)
	for _, sigma := range perm.All(4) {
		for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
			l, err := MapCPU(node, sigma, n)
			if err != nil {
				t.Fatal(err)
			}
			if len(l) != n {
				t.Fatalf("sigma=%v n=%d: %d cores", sigma, n, len(l))
			}
			seen := map[int]bool{}
			for _, c := range l {
				if seen[c] {
					t.Fatalf("sigma=%v n=%d: duplicate core %d", sigma, n, c)
				}
				seen[c] = true
			}
		}
	}
}

func TestMapCPUErrors(t *testing.T) {
	node := topology.MustNew(2, 4, 2, 8)
	if _, err := MapCPU(node, []int{0, 1, 2, 3}, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := MapCPU(node, []int{0, 1, 2, 3}, 1000); err == nil {
		t.Error("oversize n accepted")
	}
	if _, err := MapCPU(node, []int{0, 1, 2}, 4); err == nil {
		t.Error("short order accepted")
	}
	if _, err := MapCPU(node, []int{0, 0, 1, 2}, 4); err == nil {
		t.Error("invalid order accepted")
	}
}

func TestFormatMapCPU(t *testing.T) {
	if got := FormatMapCPU([]int{0, 16, 8}); got != "map_cpu:0,16,8" {
		t.Errorf("FormatMapCPU = %q", got)
	}
}

func TestInducedHierarchy(t *testing.T) {
	node := topology.MustNew(2, 4, 2, 8)
	cases := []struct {
		name  string
		cores []int
		want  []int
	}{
		// §3.4 example: all cores of the first socket on both "nodes" —
		// here: one core per L3 across socket 0 → ⟦4, 2⟧.
		{"one per l3 socket0", []int{0, 8, 16, 24, 32, 40, 48, 56}, []int{4, 2}},
		{"one per socket", []int{0, 64}, []int{2}},
		{"two per l3 of numa0", []int{0, 1, 8, 9}, []int{2, 2}},
		{"full node", rangeInts(128), []int{2, 4, 2, 8}},
		{"single core", []int{5}, nil},
		{"whole numa", rangeInts(16), []int{2, 8}},
	}
	for _, c := range cases {
		got, err := InducedHierarchy(node, c.cores)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: induced = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestInducedHierarchyErrors(t *testing.T) {
	node := topology.MustNew(2, 4, 2, 8)
	if _, err := InducedHierarchy(node, nil); err == nil {
		t.Error("empty selection accepted")
	}
	if _, err := InducedHierarchy(node, []int{0, 0}); err == nil {
		t.Error("duplicate selection accepted")
	}
	if _, err := InducedHierarchy(node, []int{0, 1, 8}); err == nil {
		t.Error("non-uniform selection accepted")
	}
	if _, err := InducedHierarchy(node, []int{0, 999}); err == nil {
		t.Error("out-of-range core accepted")
	}
	// Same sizes but different sub-structure: {0,1} in one L3 vs {8,16}
	// spanning L3s of two NUMAs.
	if _, err := InducedHierarchy(node, []int{0, 1, 64, 72}); err == nil {
		t.Error("structurally different selection accepted")
	}
}

func rangeInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
