// The last-resort serving tier: when every replica is down (or the retry
// budget ran dry before an answer arrived), the router evaluates the
// request locally with the same σ-order heuristics mapd replicas use
// under an open breaker, and marks the answer degraded:true. The fallback
// never searches — it is bounded, allocation-light ring-cost arithmetic —
// so a router box can absorb fleet-wide outages without itself melting.

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/mapd"
	"repro/internal/obs"
	"repro/internal/obs/rt"
)

func badRequestf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", mapd.ErrBadRequest, fmt.Sprintf(format, args...))
}

// clientMessage strips the ErrBadRequest prefix for response bodies,
// matching the replicas' error envelopes.
func clientMessage(err error) string {
	return strings.TrimPrefix(err.Error(), mapd.ErrBadRequest.Error()+": ")
}

// serveFallback answers path locally, flagged degraded, after the fleet
// failed to. Parse errors still surface as proper 400 envelopes so a bad
// request is distinguishable from a bad fleet.
func (g *Router) serveFallback(ctx context.Context, w http.ResponseWriter, path, ep string, body []byte) {
	_, sp := rt.StartSpan(ctx, "gate.fallback")
	defer sp.End()
	resp, err := localAnswer(path, body)
	if err != nil {
		sp.SetError()
		if errors.Is(err, mapd.ErrBadRequest) {
			writeError(w, http.StatusBadRequest, "bad_request", clientMessage(err))
			return
		}
		writeError(w, http.StatusBadGateway, "unavailable", "no replica reachable and local fallback failed: "+err.Error())
		return
	}
	g.reg.Counter("fleet_fallback_total", obs.L("endpoint", ep)).Add(1)
	b, err := json.Marshal(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("x-mrgate-fallback", "local")
	_, _ = w.Write(append(b, '\n'))
}

// localAnswer evaluates one request body against the in-process σ-order
// fallbacks. Exact endpoints (map, select, metrics/order) run their full
// evaluation — they are cheap and deterministic; the search endpoints
// (advise, map/matrix) run their heuristic fallbacks. Every answer is
// marked Degraded.
func localAnswer(path string, body []byte) (any, error) {
	switch path {
	case "/v1/map":
		var req mapd.MapRequest
		if err := decodeFallback(body, &req); err != nil {
			return nil, err
		}
		resp, err := mapd.EvalMap(req)
		if err != nil {
			return nil, err
		}
		resp.Degraded = true
		return resp, nil
	case "/v1/map/matrix":
		var req mapd.MatrixMapRequest
		if err := decodeFallback(body, &req); err != nil {
			return nil, err
		}
		return mapd.EvalMatrixMapFallback(req)
	case "/v1/advise":
		var req mapd.AdviseRequest
		if err := decodeFallback(body, &req); err != nil {
			return nil, err
		}
		return mapd.EvalAdviseFallback(req)
	case "/v1/select":
		var req mapd.SelectRequest
		if err := decodeFallback(body, &req); err != nil {
			return nil, err
		}
		resp, err := mapd.EvalSelect(req)
		if err != nil {
			return nil, err
		}
		resp.Degraded = true
		return resp, nil
	case "/v1/metrics/order":
		var req mapd.OrderMetricsRequest
		if err := decodeFallback(body, &req); err != nil {
			return nil, err
		}
		resp, err := mapd.EvalOrderMetrics(req)
		if err != nil {
			return nil, err
		}
		resp.Degraded = true
		return resp, nil
	default:
		return nil, errors.New("no local fallback for " + path)
	}
}

// decodeFallback mirrors the replicas' strict JSON decoding so the
// degraded tier rejects exactly what a healthy fleet would.
func decodeFallback(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequestf("invalid JSON: %s", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err == nil || len(extra) > 0 {
		return badRequestf("trailing data after JSON body")
	}
	return nil
}
