// Package fleet shards the mapping-advisory service across N mrserved
// replicas: a consistent-hash router sends every canonical request key to
// the same replica (so each replica's LRU stays warm for its slice of the
// key space), an active health checker deprioritizes degraded and
// draining replicas and ejects dead ones, failed attempts fail over along
// the ring under a global retry budget, and with the whole fleet down the
// router still answers from a local σ-order fallback, flagged degraded.
package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual-node count per replica: enough that the
// key space splits evenly across small fleets (the imbalance at 128
// vnodes is a few percent) while keeping the ring tiny.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring over replica indices
// [0, n). Each replica owns VNodes points on a 64-bit circle; a key is
// served by the first point at or after its hash. Because points move
// only when the replica set changes, killing one replica of N reassigns
// only that replica's keys — the other replicas' caches stay warm.
type Ring struct {
	points []ringPoint // sorted by hash
	n      int
}

type ringPoint struct {
	hash    uint64
	replica int
}

// NewRing builds the ring for n replicas with vnodes virtual nodes each
// (vnodes <= 0 selects DefaultVNodes).
func NewRing(n, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{n: n}
	if n <= 0 {
		return r
	}
	r.points = make([]ringPoint, 0, n*vnodes)
	for rep := 0; rep < n; rep++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hashKey("replica-" + strconv.Itoa(rep) + "#" + strconv.Itoa(v)),
				replica: rep,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.replica < b.replica
	})
	return r
}

// Replicas returns the replica count the ring was built for.
func (r *Ring) Replicas() int { return r.n }

// Sequence returns all replicas in the key's preference order: the
// ring-walk order starting at the key's point, with duplicates removed.
// Index 0 is the key's home replica; the rest are its failover chain.
// The order is deterministic per (key, ring), so every router instance
// agrees on where a key lives and where it fails over to.
func (r *Ring) Sequence(key string) []int {
	if r.n <= 0 {
		return nil
	}
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points) && len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}

// Home returns the key's first-choice replica.
func (r *Ring) Home(key string) int {
	if r.n <= 0 {
		return -1
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	return r.points[start%len(r.points)].replica
}

// hashKey maps a string onto the ring's 64-bit circle: FNV-1a for the
// byte mixing, then a splitmix64 finalizer. The finalizer matters — raw
// FNV avalanches poorly on the short, nearly-identical vnode labels, and
// the resulting clustered points skew key ownership badly (one replica of
// three owned 2/3 of the key space without it).
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
