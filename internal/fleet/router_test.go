package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mapd"
	"repro/internal/obs"
)

// newFleet stands up n real mapd replicas behind a router. Background
// health sweeps are off (interval = 1h); tests drive CheckNow directly so
// state transitions are deterministic.
func newFleet(t *testing.T, n int, cfg Config) (*Router, *httptest.Server, []*httptest.Server) {
	t.Helper()
	var urls, names []string
	var reps []*httptest.Server
	for i := 0; i < n; i++ {
		name := "r" + strconv.Itoa(i)
		ms := mapd.New(mapd.Config{Name: name, Registry: obs.NewRegistry()})
		ts := httptest.NewServer(ms.Handler())
		t.Cleanup(ts.Close)
		reps = append(reps, ts)
		urls = append(urls, ts.URL)
		names = append(names, name)
	}
	cfg.Replicas = urls
	cfg.Names = names
	if cfg.Backoff == 0 {
		cfg.Backoff = 500 * time.Microsecond
	}
	if cfg.MaxBackoff == 0 {
		cfg.MaxBackoff = 5 * time.Millisecond
	}
	if cfg.Health.Interval == 0 {
		cfg.Health.Interval = time.Hour
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gate := httptest.NewServer(g.Handler())
	t.Cleanup(gate.Close)
	return g, gate, reps
}

func gatePost(t *testing.T, gate *httptest.Server, path, body string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Post(gate.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, strings.TrimSuffix(string(b), "\n"), resp.Header
}

// Syntactic variants of the same query must land on the same replica —
// the canonical routing key, not the raw bytes, decides placement. That
// is what keeps each replica's cache warm for its slice of the key space.
func TestRoutingByCanonicalKey(t *testing.T) {
	_, gate, _ := newFleet(t, 3, Config{})
	variants := []string{
		`{"hierarchy":"2,2,4","order":"2-1-0","rank":5}`,
		`{"hierarchy":"[2, 2, 4]","order":"2,1,0","rank":5}`,
		`{"order":"2-1-0","hierarchy":"2,2,4","rank":5}`,
	}
	var replica string
	for i, body := range variants {
		code, resp, hdr := gatePost(t, gate, "/v1/map", body)
		if code != http.StatusOK {
			t.Fatalf("variant %d: status %d body %s", i, code, resp)
		}
		got := hdr.Get("x-mr-replica")
		if got == "" {
			t.Fatal("response missing x-mr-replica attribution")
		}
		if replica == "" {
			replica = got
		} else if got != replica {
			t.Fatalf("variant %d routed to %s, earlier variants to %s", i, got, replica)
		}
	}
}

// Killing the key's home replica must be invisible to the client: the
// router fails over along the ring and the caller still sees 200.
func TestFailoverOnDeadReplica(t *testing.T) {
	g, gate, reps := newFleet(t, 3, Config{})
	const body = `{"hierarchy":"2,2,4","order":"2-1-0","rank":5}`
	code, resp, hdr := gatePost(t, gate, "/v1/map", body)
	if code != http.StatusOK {
		t.Fatalf("warm-up: status %d body %s", code, resp)
	}
	home := hdr.Get("x-mr-replica")
	for i := range reps {
		if "r"+strconv.Itoa(i) == home {
			reps[i].Close()
		}
	}
	for i := 0; i < 5; i++ {
		code, resp, hdr = gatePost(t, gate, "/v1/map", body)
		if code != http.StatusOK {
			t.Fatalf("request %d after kill: status %d body %s — client saw the failure", i, code, resp)
		}
		if got := hdr.Get("x-mr-replica"); got == home {
			t.Fatalf("request %d served by dead replica %s", i, got)
		}
		if hdr.Get("x-mrgate-fallback") != "" {
			t.Fatalf("request %d hit local fallback; survivors should have absorbed it", i)
		}
	}
	if got := g.Registry().FindCounter("fleet_failovers_total"); got < 1 {
		t.Errorf("fleet_failovers_total = %v, want >= 1", got)
	}
	if dead := 3 - g.aliveReplicas(); dead != 1 {
		t.Errorf("%d replicas marked dead after passive failures, want 1", dead)
	}
}

// With the whole fleet gone, the router answers from the local σ-order
// fallback, flagged degraded — and /healthz says so.
func TestAllDeadServesDegradedFallback(t *testing.T) {
	g, gate, reps := newFleet(t, 3, Config{})
	for _, r := range reps {
		r.Close()
	}
	code, resp, hdr := gatePost(t, gate, "/v1/advise",
		`{"machine":"hydra","nodes":4,"collective":"alltoall","comm_size":16}`)
	if code != http.StatusOK {
		t.Fatalf("status %d body %s, want a degraded 200", code, resp)
	}
	if hdr.Get("x-mrgate-fallback") != "local" {
		t.Error("fallback answer not marked x-mrgate-fallback: local")
	}
	var advise mapd.AdviseResponse
	if err := json.Unmarshal([]byte(resp), &advise); err != nil {
		t.Fatal(err)
	}
	if !advise.Degraded {
		t.Error("fallback advise answer not marked degraded:true")
	}
	if len(advise.Best) == 0 {
		t.Error("fallback advise answer carries no ranked orders")
	}

	// Exact endpoints answer exactly, still marked degraded.
	code, resp, _ = gatePost(t, gate, "/v1/map", `{"hierarchy":"2,2,4","order":"2-1-0","rank":5}`)
	if code != http.StatusOK || !strings.Contains(resp, `"degraded":true`) {
		t.Errorf("fallback map: status %d body %s, want degraded 200", code, resp)
	}
	if !strings.Contains(resp, `"new_rank":5`) {
		t.Errorf("fallback map answer wrong: %s", resp)
	}

	resp2, err := http.Get(gate.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	b, _ := io.ReadAll(resp2.Body)
	if resp2.StatusCode != http.StatusOK || !strings.Contains(string(b), "degraded") {
		t.Errorf("/healthz with dead fleet: status %d body %s, want degraded 200", resp2.StatusCode, b)
	}
	if g.Registry().FindCounter("fleet_fallback_total", obs.L("endpoint", "map")) < 1 {
		t.Error("fleet_fallback_total{endpoint=map} not incremented")
	}
}

// With the fallback disabled, a dead fleet is an honest 502.
func TestAllDeadWithoutFallback(t *testing.T) {
	_, gate, reps := newFleet(t, 2, Config{DisableFallback: true})
	for _, r := range reps {
		r.Close()
	}
	code, resp, _ := gatePost(t, gate, "/v1/map", `{"hierarchy":"2,2,4","order":"2-1-0","rank":5}`)
	if code != http.StatusBadGateway {
		t.Errorf("status %d body %s, want 502", code, resp)
	}
	if !strings.Contains(resp, `"error"`) {
		t.Errorf("502 body lacks the error envelope: %s", resp)
	}
}

// Client errors are authoritative: a 400 from a replica must pass through
// unretried, and a parse-rejected body must still route (deterministically)
// so the replica produces that 400.
func TestBadRequestPassesThroughUnretried(t *testing.T) {
	g, gate, _ := newFleet(t, 3, Config{})
	code, resp, _ := gatePost(t, gate, "/v1/map", `{"hierarchy":"0","rank":1}`)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d body %s, want the replica's 400", code, resp)
	}
	if !strings.Contains(resp, "bad_request") {
		t.Errorf("400 body lacks the mapd envelope: %s", resp)
	}
	if got := g.Registry().FindCounter("fleet_retries_total"); got != 0 {
		t.Errorf("a 400 answer drove %v retries, want 0", got)
	}
}

func TestDrainingRouter(t *testing.T) {
	g, gate, _ := newFleet(t, 1, Config{})
	g.StartDraining()
	code, _, hdr := gatePost(t, gate, "/v1/map", `{"hierarchy":"2,2","order":"0-1","rank":1}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining router answered %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("draining 503 missing Retry-After")
	}
	resp, err := http.Get(gate.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(b), "draining") {
		t.Errorf("/healthz while draining: status %d body %s", resp.StatusCode, b)
	}
}

// Retry backoff must honor a replica's Retry-After hint: a shedding
// replica asking for 2s must not be hammered again in 2ms.
func TestBackoffHonorsRetryAfter(t *testing.T) {
	var hits sync.Map
	stub := func(i int) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			n, _ := hits.LoadOrStore(i, new(int))
			*n.(*int)++
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
		})
	}
	var urls []string
	for i := 0; i < 2; i++ {
		ts := httptest.NewServer(stub(i))
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	g, err := New(Config{Replicas: urls, Health: HealthConfig{Interval: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var slept []time.Duration
	g.sleep = func(d time.Duration) {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
	}
	gate := httptest.NewServer(g.Handler())
	t.Cleanup(gate.Close)
	code, body, _ := gatePost(t, gate, "/v1/map", `{"hierarchy":"2,2","order":"0-1","rank":1}`)
	if code != http.StatusOK || !strings.Contains(body, `"degraded":true`) {
		t.Fatalf("all-shedding fleet: status %d body %s, want degraded fallback", code, body)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) == 0 {
		t.Fatal("no retries slept")
	}
	for i, d := range slept {
		if d < 2*time.Second {
			t.Errorf("retry %d slept %v, want >= the 2s Retry-After hint", i, d)
		}
	}
}

// A slow home replica triggers a hedge to the second choice; the hedge's
// answer wins and the client never waits out the stall.
func TestHedgedRequestWins(t *testing.T) {
	slowRelease := make(chan struct{})
	defer close(slowRelease)
	mkStub := func(name string, slow bool) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if slow {
				<-slowRelease
			}
			w.Header().Set("x-mr-replica", name)
			_, _ = w.Write([]byte(`{"ok":true}`))
		}))
	}
	slow := mkStub("slow", true)
	fast := mkStub("fast", false)
	t.Cleanup(slow.Close)
	t.Cleanup(fast.Close)

	g, err := New(Config{
		Replicas: []string{slow.URL, fast.URL},
		Names:    []string{"slow", "fast"},
		Hedge:    5 * time.Millisecond,
		Health:   HealthConfig{Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	gate := httptest.NewServer(g.Handler())
	t.Cleanup(gate.Close)

	// Find a body whose home is the slow replica. The body is junk: the
	// router falls back to raw-byte keying and the stubs answer anyway.
	body := ""
	for i := 0; i < 10000; i++ {
		candidate := "junk-" + strconv.Itoa(i)
		key := "raw|/v1/map|" + strconv.FormatUint(hashKey(candidate), 16)
		if g.ring.Home(key) == 0 {
			body = candidate
			break
		}
	}
	if body == "" {
		t.Fatal("no raw key homed on the slow replica in 10000 tries")
	}
	done := make(chan struct{})
	var code int
	var hdr http.Header
	go func() {
		defer close(done)
		code, _, hdr = gatePost(t, gate, "/v1/map", body)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hedged request never completed")
	}
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got := hdr.Get("x-mr-replica"); got != "fast" {
		t.Fatalf("answer came from %q, want the hedge winner \"fast\"", got)
	}
	if g.Registry().FindCounter("fleet_hedges_total") < 1 {
		t.Error("fleet_hedges_total not incremented")
	}
	if g.Registry().FindCounter("fleet_hedge_wins_total") < 1 {
		t.Error("fleet_hedge_wins_total not incremented")
	}
}

// An exhausted retry budget stops the retry storm: the router degrades to
// the fallback instead of amplifying load onto a failing fleet.
func TestRetryBudgetExhaustionDegrades(t *testing.T) {
	var attempts sync.Map
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n, _ := attempts.LoadOrStore("n", new(int64))
		*n.(*int64)++
		w.WriteHeader(http.StatusInternalServerError)
	}))
	t.Cleanup(stub.Close)
	g, err := New(Config{
		Replicas:         []string{stub.URL},
		RetryBudgetRatio: 0.001,
		RetryBudgetBurst: 2,
		Health:           HealthConfig{Interval: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	g.sleep = func(time.Duration) {}
	gate := httptest.NewServer(g.Handler())
	t.Cleanup(gate.Close)

	const body = `{"hierarchy":"2,2","order":"0-1","rank":1}`
	for i := 0; i < 10; i++ {
		code, resp, _ := gatePost(t, gate, "/v1/map", body)
		if code != http.StatusOK || !strings.Contains(resp, `"degraded":true`) {
			t.Fatalf("request %d: status %d body %s, want degraded fallback", i, code, resp)
		}
	}
	if g.Registry().FindCounter("fleet_retry_budget_exhausted_total") < 1 {
		t.Error("budget never reported exhaustion")
	}
	n, _ := attempts.LoadOrStore("n", new(int64))
	// 10 requests, 2 burst tokens: at most 10 first attempts + 2 retries
	// (the 0.001 deposits never add up to another token).
	if got := *n.(*int64); got > 12 {
		t.Errorf("failing replica saw %d attempts for 10 requests; budget should cap at 12", got)
	}
}

func TestFleetStatusEndpoint(t *testing.T) {
	g, gate, reps := newFleet(t, 2, Config{})
	reps[1].Close()
	// Two passive failures eject r1.
	g.checker.ReportFailure(1)
	g.checker.ReportFailure(1)
	resp, err := http.Get(gate.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st fleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st.Replicas) != 2 {
		t.Fatalf("fleet status lists %d replicas, want 2", len(st.Replicas))
	}
	if st.Replicas[0].State != "healthy" {
		t.Errorf("r0 state %q, want healthy", st.Replicas[0].State)
	}
	if st.Replicas[1].State != "dead" {
		t.Errorf("r1 state %q, want dead after passive failures", st.Replicas[1].State)
	}
	if !st.Fallback {
		t.Error("fallback not reported enabled")
	}
}
