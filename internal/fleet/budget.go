// The global retry budget: a token bucket deposited by live traffic and
// withdrawn by retries (and hedges). With a deposit ratio r, sustained
// failure can amplify fleet traffic by at most a factor of 1+r — the
// router degrades to fallback answers instead of melting the surviving
// replicas under a retry storm.

package fleet

import "sync"

// Budget is a concurrency-safe retry token bucket.
type Budget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	ratio  float64
}

// NewBudget returns a budget depositing ratio tokens per request, capped
// at max tokens (<= 0 select the defaults: ratio 0.1, max 64). The bucket
// starts full so short bursts right after boot can still retry.
func NewBudget(ratio, max float64) *Budget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if max <= 0 {
		max = 64
	}
	return &Budget{tokens: max, max: max, ratio: ratio}
}

// Deposit credits the budget for one incoming request.
func (b *Budget) Deposit() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

// Withdraw takes one retry token; it reports false — retry denied — when
// the bucket is empty.
func (b *Budget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the current balance (for the fleet_retry_budget_tokens
// gauge and /v1/fleet).
func (b *Budget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
