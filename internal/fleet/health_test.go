package fleet

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/obs"
)

// healthStub is a /healthz endpoint whose answer the test can switch.
type healthStub struct {
	mu     sync.Mutex
	status string // JSON status field; "" = connection-level refusal stand-in (500 garbage)
}

func (h *healthStub) set(s string) {
	h.mu.Lock()
	h.status = s
	h.mu.Unlock()
}

func (h *healthStub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	s := h.status
	h.mu.Unlock()
	if s == "" {
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte("not json"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if s == "draining" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_, _ = w.Write([]byte(`{"status":"` + s + `"}`))
}

func newHealthFixture(t *testing.T, statuses ...string) (*Checker, []*healthStub) {
	t.Helper()
	var urls, names []string
	var stubs []*healthStub
	for i, s := range statuses {
		stub := &healthStub{status: s}
		ts := httptest.NewServer(stub)
		t.Cleanup(ts.Close)
		stubs = append(stubs, stub)
		urls = append(urls, ts.URL)
		names = append(names, "r"+string(rune('0'+i)))
	}
	return NewChecker(urls, names, HealthConfig{FailThreshold: 2}, obs.NewRegistry()), stubs
}

func TestCheckerMapsTriStateHealth(t *testing.T) {
	c, _ := newHealthFixture(t, "healthy", "degraded", "draining")
	c.CheckNow(context.Background())
	want := []ReplicaState{StateHealthy, StateDegraded, StateDraining}
	for i, w := range want {
		if got := c.State(i); got != w {
			t.Errorf("replica %d: state %v, want %v", i, got, w)
		}
	}
}

func TestCheckerEjectsAfterThreshold(t *testing.T) {
	c, stubs := newHealthFixture(t, "healthy")
	ctx := context.Background()
	c.CheckNow(ctx)
	stubs[0].set("") // garbage answers now
	c.CheckNow(ctx)
	if got := c.State(0); got == StateDead {
		t.Fatal("one failed probe ejected the replica; threshold is 2")
	}
	c.CheckNow(ctx)
	if got := c.State(0); got != StateDead {
		t.Fatalf("state %v after %d failed probes, want dead", got, 2)
	}
	// Recovery: one good probe revives it.
	stubs[0].set("healthy")
	c.CheckNow(ctx)
	if got := c.State(0); got != StateHealthy {
		t.Fatalf("state %v after recovery probe, want healthy", got)
	}
}

func TestPassiveReportsEjectAndRevive(t *testing.T) {
	c, _ := newHealthFixture(t, "healthy")
	c.ReportFailure(0)
	c.ReportFailure(0)
	if got := c.State(0); got != StateDead {
		t.Fatalf("state %v after passive failures at threshold, want dead", got)
	}
	c.ReportSuccess(0)
	if got := c.State(0); got != StateHealthy {
		t.Fatalf("state %v after passive success, want healthy", got)
	}
}

func TestCheckerStateChangeHook(t *testing.T) {
	c, stubs := newHealthFixture(t, "healthy")
	var mu sync.Mutex
	var seen []ReplicaState
	c.onState = func(i int, s ReplicaState) {
		mu.Lock()
		seen = append(seen, s)
		mu.Unlock()
	}
	ctx := context.Background()
	c.CheckNow(ctx) // healthy → healthy: no change, no event
	stubs[0].set("degraded")
	c.CheckNow(ctx)
	stubs[0].set("degraded") // unchanged: no event
	c.CheckNow(ctx)
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 1 || seen[0] != StateDegraded {
		t.Errorf("state hook saw %v, want exactly one degraded transition", seen)
	}
}

func TestCheckerUnreachableReplica(t *testing.T) {
	// A URL nobody listens on: probes fail at the transport layer.
	c := NewChecker([]string{"http://127.0.0.1:1"}, []string{"r0"},
		HealthConfig{FailThreshold: 2}, obs.NewRegistry())
	ctx := context.Background()
	c.CheckNow(ctx)
	c.CheckNow(ctx)
	if got := c.State(0); got != StateDead {
		t.Fatalf("state %v for unreachable replica, want dead", got)
	}
}
