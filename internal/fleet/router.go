// The routing tier itself: parse the request far enough to recover the
// canonical key, walk the consistent-hash ring in health-aware preference
// order, and proxy. Failures fail over along the ring under a global
// retry budget with capped jittered backoff honoring Retry-After; an
// optional hedge cuts the tail by racing the second-choice replica; and
// when every replica is gone the router answers from the local σ-order
// fallback instead of going dark.

package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mapd"
	"repro/internal/obs"
	"repro/internal/obs/rt"
)

// Config tunes a Router. The zero value is not servable: at least one
// replica URL is required.
type Config struct {
	// Replicas are the mrserved base URLs (e.g. http://127.0.0.1:8081).
	Replicas []string
	// Names label the replicas in metrics and /v1/fleet (default r0..rN).
	Names []string
	// VNodes per replica on the hash ring (default DefaultVNodes).
	VNodes int
	// Retries bounds failover attempts after the first try (default 3).
	Retries int
	// RetryBudgetRatio is the retry-budget deposit per incoming request
	// (default 0.1: sustained retry amplification is capped at 10%).
	RetryBudgetRatio float64
	// RetryBudgetBurst caps the retry-budget bucket (default 64).
	RetryBudgetBurst float64
	// Backoff is the base retry delay, doubled per attempt with full
	// jitter (default 2ms); MaxBackoff caps it (default 250ms). A replica
	// Retry-After hint raises the delay when larger.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Hedge, when positive, races the second-choice replica if the first
	// hasn't answered within this delay (tail-latency insurance; hedges
	// draw from the retry budget). 0 disables hedging.
	Hedge time.Duration
	// MaxBody caps an incoming request body (default 1 MiB, matching
	// mapd); MaxRespBody caps a proxied response (default 64 MiB).
	MaxBody     int64
	MaxRespBody int64
	// DisableFallback turns off the last-resort local σ-order answers.
	DisableFallback bool
	// Health tunes the active checker.
	Health HealthConfig
	// Client proxies requests (default: a dedicated client with sane
	// connection pooling).
	Client *http.Client
	// Registry receives the fleet_* metrics (default: fresh).
	Registry *obs.Registry
	// Tracer records gate-side spans — the route root, one proxy span per
	// failover/hedge attempt, backoff waits, health probes, and the local
	// fallback — on the same trace id the gate forwards to the replica
	// (nil disables tracing; every instrumentation point is nil-safe).
	Tracer *rt.Tracer
	// ScrapeTimeout bounds one replica /v1/stats or /v1/slo scrape when
	// serving the fleet rollup endpoints (default 2s).
	ScrapeTimeout time.Duration
	// Logger receives failover/fallback diagnostics (default: discard).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Names == nil {
		for i := range c.Replicas {
			c.Names = append(c.Names, "r"+strconv.Itoa(i))
		}
	}
	if c.Retries == 0 {
		c.Retries = 3
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.Backoff <= 0 {
		c.Backoff = 2 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 250 * time.Millisecond
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.MaxRespBody <= 0 {
		c.MaxRespBody = 64 << 20
	}
	if c.ScrapeTimeout <= 0 {
		c.ScrapeTimeout = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
		}}
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Router is the consistent-hash fleet router.
type Router struct {
	cfg     Config
	ring    *Ring
	checker *Checker
	budget  *Budget
	reg     *obs.Registry
	logger  *slog.Logger

	draining atomic.Bool

	// rollup notes: the last /v1/fleet/stats + /v1/fleet/slo scores per
	// replica, surfaced on /v1/fleet and the fleet_replica_outlier gauge.
	rollupMu sync.Mutex
	notes    []rollupNote

	retries      *obs.Counter
	failovers    *obs.Counter
	hedges       *obs.Counter
	hedgeWins    *obs.Counter
	budgetDenied *obs.Counter
	budgetGauge  *obs.Gauge

	// sleep is the retry backoff sleeper; tests replace it.
	sleep func(time.Duration)
}

// New builds a Router. It does not start the health checker; call Start.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("fleet: no replicas configured")
	}
	cfg = cfg.withDefaults()
	if len(cfg.Names) != len(cfg.Replicas) {
		return nil, fmt.Errorf("fleet: %d names for %d replicas", len(cfg.Names), len(cfg.Replicas))
	}
	for i, u := range cfg.Replicas {
		cfg.Replicas[i] = strings.TrimSuffix(u, "/")
	}
	g := &Router{
		cfg:          cfg,
		notes:        make([]rollupNote, len(cfg.Replicas)),
		ring:         NewRing(len(cfg.Replicas), cfg.VNodes),
		budget:       NewBudget(cfg.RetryBudgetRatio, cfg.RetryBudgetBurst),
		reg:          cfg.Registry,
		logger:       cfg.Logger,
		retries:      cfg.Registry.Counter("fleet_retries_total"),
		failovers:    cfg.Registry.Counter("fleet_failovers_total"),
		hedges:       cfg.Registry.Counter("fleet_hedges_total"),
		hedgeWins:    cfg.Registry.Counter("fleet_hedge_wins_total"),
		budgetDenied: cfg.Registry.Counter("fleet_retry_budget_exhausted_total"),
		budgetGauge:  cfg.Registry.Gauge("fleet_retry_budget_tokens"),
		sleep:        time.Sleep,
	}
	for name, help := range map[string]string{
		"fleet_requests_total":               "Proxied requests, by replica and HTTP status code (code=error: transport failure).",
		"fleet_request_seconds":              "End-to-end routed request latency, by endpoint.",
		"fleet_retries_total":                "Failover retry attempts issued by the router.",
		"fleet_failovers_total":              "Requests served by a replica other than the key's home replica.",
		"fleet_hedges_total":                 "Hedged (speculative second) requests issued for the tail.",
		"fleet_hedge_wins_total":             "Hedged requests that beat the primary.",
		"fleet_retry_budget_tokens":          "Retry-budget tokens currently available.",
		"fleet_retry_budget_exhausted_total": "Retries denied because the global retry budget was empty.",
		"fleet_fallback_total":               "Answers served by the router's local degraded fallback, by endpoint.",
		"fleet_replica_state":                "Replica routing state (0 healthy, 1 degraded, 2 draining, 3 dead).",
		"fleet_health_checks_total":          "Active health probes, by replica and result.",
		"fleet_replica_shape_divergence":     "Total-variation distance between a replica's shape-class mix and the fleet's (last rollup).",
		"fleet_replica_outlier":              "1 when the replica's shape mix or burn rate was flagged an outlier in the last rollup.",
		"fleet_replica_burn_rate":            "Worst availability/latency burn rate across the replica's endpoints, shortest window (last rollup).",
		"fleet_scrape_errors_total":          "Replica stats/SLO scrapes that failed during a fleet rollup.",
	} {
		cfg.Registry.SetHelp(name, help)
	}
	g.checker = NewChecker(cfg.Replicas, cfg.Names, cfg.Health, cfg.Registry)
	g.checker.tracer = cfg.Tracer
	for _, n := range cfg.Names {
		cfg.Registry.Gauge("fleet_replica_state", obs.L("replica", n)).Set(float64(StateHealthy))
	}
	g.checker.onState = func(i int, s ReplicaState) {
		cfg.Registry.Gauge("fleet_replica_state", obs.L("replica", cfg.Names[i])).Set(float64(s))
		g.logger.Info("replica state", "replica", cfg.Names[i], "url", cfg.Replicas[i], "state", s.String())
	}
	return g, nil
}

// Start settles initial health states synchronously, then begins periodic
// sweeps. Stop ends them.
func (g *Router) Start(ctx context.Context) {
	g.checker.CheckNow(ctx)
	g.checker.Start()
}

// Stop halts the health checker.
func (g *Router) Stop() { g.checker.Stop() }

// CheckNow runs one synchronous health sweep (exposed for tests and the
// perf harness).
func (g *Router) CheckNow(ctx context.Context) { g.checker.CheckNow(ctx) }

// States snapshots every replica's routing state.
func (g *Router) States() []ReplicaState { return g.checker.States() }

// StartDraining flips the router into the draining state: /healthz turns
// 503 and new requests are refused while in-flight proxies finish.
func (g *Router) StartDraining() { g.draining.Store(true) }

// Registry returns the router's metric registry.
func (g *Router) Registry() *obs.Registry { return g.reg }

// endpointName maps an API path to its metrics label.
func endpointName(path string) (string, bool) {
	switch path {
	case "/v1/map":
		return "map", true
	case "/v1/map/matrix":
		return "map_matrix", true
	case "/v1/advise":
		return "advise", true
	case "/v1/select":
		return "select", true
	case "/v1/metrics/order":
		return "metrics_order", true
	default:
		return "", false
	}
}

// Handler returns the router's HTTP handler: the five mapd query
// endpoints proxied by canonical key, plus the router's own /healthz,
// /metrics, and /v1/fleet.
func (g *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, path := range []string{"/v1/map", "/v1/map/matrix", "/v1/advise", "/v1/select", "/v1/metrics/order"} {
		path := path
		ep, _ := endpointName(path)
		latency := g.reg.Histogram("fleet_request_seconds", obs.WallBuckets(), obs.L("endpoint", ep))
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			g.route(w, r, path, ep)
			latency.Observe(time.Since(start).Seconds())
		})
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		status, code := g.health()
		w.Header().Set("Content-Type", "application/json")
		if code != http.StatusOK {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(code)
		}
		_, _ = w.Write([]byte(`{"status":"` + status + `"}` + "\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		g.budgetGauge.Set(g.budget.Tokens())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = obs.WritePrometheus(w, g.reg)
	})
	mux.HandleFunc("/v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		g.serveFleetStatus(w)
	})
	mux.HandleFunc("/v1/fleet/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
			return
		}
		g.serveFleetStats(r.Context(), w)
	})
	mux.HandleFunc("/v1/fleet/slo", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
			return
		}
		g.serveFleetSLO(r.Context(), w)
	})
	return mux
}

// health resolves the router's own tri-state /healthz: draining beats
// degraded (whole fleet dead but the local fallback still answers) beats
// healthy. With the fleet dead and the fallback disabled the router is
// truly down and says so with a 503.
func (g *Router) health() (string, int) {
	switch {
	case g.draining.Load():
		return "draining", http.StatusServiceUnavailable
	case g.aliveReplicas() == 0 && !g.cfg.DisableFallback:
		return "degraded", http.StatusOK
	case g.aliveReplicas() == 0:
		return "dead", http.StatusServiceUnavailable
	default:
		return "healthy", http.StatusOK
	}
}

func (g *Router) aliveReplicas() int {
	n := 0
	for _, s := range g.checker.States() {
		if s != StateDead {
			n++
		}
	}
	return n
}

// fleetStatus is the GET /v1/fleet answer.
type fleetStatus struct {
	Replicas          []replicaStatus `json:"replicas"`
	RetryBudgetTokens float64         `json:"retry_budget_tokens"`
	Fallback          bool            `json:"fallback"`
	Hedge             string          `json:"hedge,omitempty"`
}

type replicaStatus struct {
	Name  string `json:"name"`
	URL   string `json:"url"`
	State string `json:"state"`
	// Rollup scores from the last /v1/fleet/stats and /v1/fleet/slo
	// serves; absent until a rollup has run.
	ShapeDivergence float64 `json:"shape_divergence,omitempty"`
	BurnRate        float64 `json:"burn_rate,omitempty"`
	Outlier         bool    `json:"outlier,omitempty"`
}

func (g *Router) serveFleetStatus(w http.ResponseWriter) {
	st := fleetStatus{
		RetryBudgetTokens: g.budget.Tokens(),
		Fallback:          !g.cfg.DisableFallback,
	}
	if g.cfg.Hedge > 0 {
		st.Hedge = g.cfg.Hedge.String()
	}
	g.rollupMu.Lock()
	notes := append([]rollupNote(nil), g.notes...)
	g.rollupMu.Unlock()
	for i, u := range g.cfg.Replicas {
		st.Replicas = append(st.Replicas, replicaStatus{
			Name:            g.cfg.Names[i],
			URL:             u,
			State:           g.checker.State(i).String(),
			ShapeDivergence: notes[i].shapeDivergence,
			BurnRate:        notes[i].burnRate,
			Outlier:         notes[i].shapeOutlier || notes[i].burnOutlier,
		})
	}
	b, err := json.Marshal(st)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(b, '\n'))
}

// candidates orders the key's ring sequence by health class: healthy
// replicas first (in ring order, preserving cache locality), then
// degraded, then draining. Dead replicas are ejected entirely.
func (g *Router) candidates(seq []int) []int {
	var classes [3][]int
	for _, i := range seq {
		switch g.checker.State(i) {
		case StateHealthy:
			classes[0] = append(classes[0], i)
		case StateDegraded:
			classes[1] = append(classes[1], i)
		case StateDraining:
			classes[2] = append(classes[2], i)
		}
	}
	out := classes[0]
	out = append(out, classes[1]...)
	return append(out, classes[2]...)
}

// upstream is one proxied attempt's outcome.
type upstream struct {
	idx        int
	status     int
	header     http.Header
	body       []byte
	err        error
	retryAfter time.Duration
	hedge      bool
}

// retryable reports whether the attempt may be retried on another
// replica: transport failures and 5xx answers are; everything else is the
// authoritative answer.
func (u upstream) retryable() bool { return u.err != nil || u.status >= 500 }

// route is the proxy pipeline for one request. The gate opens the
// request's root span on the same trace id it forwards (continuing an
// incoming traceparent when present), so a stitched export shows the
// gate's routing decisions and the replica's evaluation side by side.
func (g *Router) route(w http.ResponseWriter, r *http.Request, path, ep string) {
	ctx, span := g.cfg.Tracer.StartRequest(r.Context(), "gate "+path, r.Header.Get("traceparent"))
	defer span.End()
	if tp := span.Traceparent(); tp != "" {
		w.Header().Set("traceparent", tp)
	}
	if g.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "unavailable", "router is draining")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"body_too_large", fmt.Sprintf("request body exceeds %d bytes", g.cfg.MaxBody))
		} else {
			writeError(w, http.StatusBadRequest, "bad_request", "reading request body: "+err.Error())
		}
		return
	}
	// The canonical key gives warm-cache locality; a body the key parser
	// rejects is still routed (deterministically, by raw bytes) so the
	// replica's stricter pipeline can produce the authoritative error.
	key, kerr := mapd.RoutingKey(path, body)
	if kerr != nil {
		key = "raw|" + path + "|" + strconv.FormatUint(hashKey(string(body)), 16)
	}
	seq := g.ring.Sequence(key)
	g.budget.Deposit()

	cands := g.candidates(seq)
	span.SetAttr("candidates", int64(len(cands)))
	var last upstream
	haveLast := false
	var retryAfter time.Duration
	for attempt := 0; attempt <= g.cfg.Retries; attempt++ {
		if attempt > 0 {
			if !g.budget.Withdraw() {
				g.budgetDenied.Add(1)
				span.Event("retry_budget_exhausted", obs.Arg{Key: "attempt", Val: int64(attempt)})
				break
			}
			g.retries.Add(1)
			span.Event("failover_attempt", obs.Arg{Key: "attempt", Val: int64(attempt)})
			_, bsp := rt.StartSpan(ctx, "gate.backoff")
			bsp.SetAttr("attempt", int64(attempt))
			g.sleep(g.backoffDelay(attempt-1, retryAfter))
			bsp.End()
			// Health states may have settled since the failure.
			cands = g.candidates(seq)
		}
		if len(cands) == 0 {
			break
		}
		var u upstream
		if attempt == 0 && g.cfg.Hedge > 0 && len(cands) > 1 {
			u = g.sendHedged(ctx, cands, path, body, r.Header)
		} else {
			u = g.send(ctx, cands[attempt%len(cands)], path, body, r.Header, false)
		}
		last, haveLast = u, true
		if !u.retryable() {
			span.SetAttr("attempts", int64(attempt+1))
			span.SetAttr("failover", b2i64(u.idx != seq[0]))
			g.writeUpstream(w, u, seq[0])
			return
		}
		retryAfter = u.retryAfter
	}

	if !g.cfg.DisableFallback {
		g.serveFallback(ctx, w, path, ep, body)
		return
	}
	if haveLast && last.err == nil {
		// Relay the fleet's own last word (e.g. every replica shedding).
		g.writeUpstream(w, last, seq[0])
		return
	}
	span.SetError()
	writeError(w, http.StatusBadGateway, "unavailable", "no replica reachable")
}

// send proxies one attempt to replica idx and reads the full response.
// Each attempt is its own child span named after the replica, and the
// outgoing traceparent is that span's — the replica's spans parent under
// this exact attempt, not under the route root.
func (g *Router) send(ctx context.Context, idx int, path string, body []byte, inHdr http.Header, hedge bool) upstream {
	u := upstream{idx: idx, hedge: hedge}
	sctx, sp := rt.StartSpan(ctx, "proxy "+g.cfg.Names[idx])
	defer sp.End()
	sp.SetAttr("hedge", b2i64(hedge))
	req, err := http.NewRequestWithContext(sctx, http.MethodPost, g.cfg.Replicas[idx]+path, strings.NewReader(string(body)))
	if err != nil {
		u.err = err
		sp.SetError()
		return u
	}
	req.Header.Set("Content-Type", "application/json")
	tp := sp.Traceparent()
	if tp == "" {
		tp = inHdr.Get("traceparent")
	}
	if tp != "" {
		req.Header.Set("traceparent", tp)
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		u.err = err
		sp.SetError()
		// A cancelled context is the hedge race settling, not evidence
		// against the replica.
		if ctx.Err() == nil {
			g.checker.ReportFailure(idx)
		}
		g.reg.Counter("fleet_requests_total",
			obs.L("replica", g.cfg.Names[idx]), obs.L("code", "error")).Add(1)
		return u
	}
	u.status = resp.StatusCode
	u.header = resp.Header
	u.body, err = io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxRespBody))
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		u.err = err
		sp.SetError()
		if ctx.Err() == nil {
			g.checker.ReportFailure(idx)
		}
		g.reg.Counter("fleet_requests_total",
			obs.L("replica", g.cfg.Names[idx]), obs.L("code", "error")).Add(1)
		return u
	}
	g.checker.ReportSuccess(idx)
	if d, ok := ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
		u.retryAfter = d
	}
	sp.SetAttr("status", int64(u.status))
	if u.status >= http.StatusInternalServerError {
		sp.SetError()
	}
	g.reg.Counter("fleet_requests_total",
		obs.L("replica", g.cfg.Names[idx]), obs.L("code", strconv.Itoa(u.status))).Add(1)
	return u
}

// sendHedged races the key's first two candidates: the primary is sent
// immediately; if it hasn't answered within the hedge delay (and the
// retry budget allows), the secondary is launched and the first
// non-retryable answer wins. The loser is cancelled.
func (g *Router) sendHedged(ctx context.Context, cands []int, path string, body []byte, inHdr http.Header) upstream {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan upstream, 2)
	go func() { ch <- g.send(hctx, cands[0], path, body, inHdr, false) }()
	timer := time.NewTimer(g.cfg.Hedge)
	defer timer.Stop()
	inflight := 1
	var last upstream
	for received := 0; received < inflight; {
		select {
		case u := <-ch:
			received++
			if !u.retryable() {
				if u.hedge {
					g.hedgeWins.Add(1)
				}
				return u
			}
			last = u
		case <-timer.C:
			if g.budget.Withdraw() {
				g.hedges.Add(1)
				inflight++
				go func() { ch <- g.send(hctx, cands[1], path, body, inHdr, true) }()
			}
		}
	}
	return last
}

// writeUpstream relays a replica answer to the client.
func (g *Router) writeUpstream(w http.ResponseWriter, u upstream, home int) {
	if u.idx != home {
		g.failovers.Add(1)
	}
	for _, h := range []string{"Content-Type", "Retry-After", "traceparent", "x-mr-replica"} {
		if v := u.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if w.Header().Get("x-mr-replica") == "" {
		// Unnamed replicas still get attributed by the router.
		w.Header().Set("x-mr-replica", g.cfg.Names[u.idx])
	}
	if u.status != http.StatusOK {
		w.WriteHeader(u.status)
	}
	_, _ = w.Write(u.body)
}

// backoffDelay is the capped exponential backoff with full jitter for the
// given zero-based retry, raised to the replicas' Retry-After hint when
// one was sent.
func (g *Router) backoffDelay(retry int, retryAfter time.Duration) time.Duration {
	d := g.cfg.Backoff << uint(retry)
	if d > g.cfg.MaxBackoff || d <= 0 {
		d = g.cfg.MaxBackoff
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

func b2i64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// writeError emits the structured error envelope mapd clients already
// parse.
func writeError(w http.ResponseWriter, code int, status, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, _ := json.Marshal(map[string]any{"error": map[string]any{
		"code": code, "status": status, "message": msg,
	}})
	_, _ = w.Write(append(b, '\n'))
}
