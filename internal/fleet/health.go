// Active health checking against the replicas' tri-state /healthz: the
// checker polls every replica, maps the JSON answer onto a replica state,
// and ejects replicas whose probes keep failing. The router additionally
// reports passive outcomes (transport failures and successful proxied
// responses), so a kill is usually detected by the very request that hit
// it rather than the next poll.

package fleet

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/rt"
)

// ReplicaState classifies one replica for routing decisions. Ordering
// matters: candidates are tried healthy first, then degraded, then
// draining; dead replicas are not tried at all.
type ReplicaState int32

const (
	// StateHealthy: routable, first choice.
	StateHealthy ReplicaState = iota
	// StateDegraded: answering, but from cache/heuristics (breaker open or
	// SLO burning). Deprioritized, not excluded.
	StateDegraded
	// StateDraining: announced shutdown; routed to only when nothing
	// better is alive.
	StateDraining
	// StateDead: probes failing; ejected until a probe succeeds.
	StateDead
)

func (s ReplicaState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateDraining:
		return "draining"
	default:
		return "dead"
	}
}

// HealthConfig tunes the Checker. The zero value picks defaults.
type HealthConfig struct {
	// Interval between active sweeps (default 1s).
	Interval time.Duration
	// Timeout bounds one /healthz probe (default 500ms).
	Timeout time.Duration
	// FailThreshold is how many consecutive probe/transport failures eject
	// a replica (default 2).
	FailThreshold int
	// Client issues the probes (default: a dedicated client).
	Client *http.Client
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 500 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Checker tracks the state of every replica in the fleet.
type Checker struct {
	urls  []string
	names []string
	cfg   HealthConfig

	states []atomic.Int32
	fails  []atomic.Int32

	// onState observes every state change (wired to the fleet_replica_state
	// gauge); called concurrently.
	onState func(i int, s ReplicaState)
	// tracer records each probe as its own head-sampled root span (nil
	// disables).
	tracer *rt.Tracer
	checks []*obs.Counter // per-replica probe counter, ok results
	probes []*obs.Counter // per-replica probe counter, failed results

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewChecker builds a checker for the replica base URLs. Replicas start
// healthy so a cold router routes immediately; call CheckNow to settle
// real states before serving.
func NewChecker(urls, names []string, cfg HealthConfig, reg *obs.Registry) *Checker {
	c := &Checker{
		urls:   urls,
		names:  names,
		cfg:    cfg.withDefaults(),
		states: make([]atomic.Int32, len(urls)),
		fails:  make([]atomic.Int32, len(urls)),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for i := range urls {
		l := obs.L("replica", names[i])
		c.checks = append(c.checks, reg.Counter("fleet_health_checks_total", l, obs.L("result", "ok")))
		c.probes = append(c.probes, reg.Counter("fleet_health_checks_total", l, obs.L("result", "fail")))
	}
	return c
}

// Start launches the periodic sweep goroutine; Stop ends it.
func (c *Checker) Start() {
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.CheckNow(context.Background())
			}
		}
	}()
}

// Stop ends the sweep goroutine and waits for it.
func (c *Checker) Stop() {
	c.stopOnce.Do(func() { close(c.stop) })
	<-c.done
}

// CheckNow probes every replica once, concurrently, and settles states.
func (c *Checker) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	for i := range c.urls {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.probe(ctx, i)
		}(i)
	}
	wg.Wait()
}

// probe issues one /healthz request and folds the answer into the state.
// Each probe is its own root span so sampled gate traces show health
// sweeps next to the requests they shaped.
func (c *Checker) probe(ctx context.Context, i int) {
	ctx, span := c.tracer.StartRequest(ctx, "gate.healthprobe "+c.names[i], "")
	defer span.End()
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.urls[i]+"/healthz", nil)
	if err != nil {
		c.fail(i)
		span.SetError()
		return
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		c.fail(i)
		span.SetError()
		return
	}
	var body struct {
		Status string `json:"status"`
	}
	derr := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body)
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if derr != nil {
		c.fail(i)
		span.SetError()
		return
	}
	switch body.Status {
	case "healthy":
		c.succeed(i, StateHealthy)
	case "degraded":
		c.succeed(i, StateDegraded)
	case "draining":
		// Announced via 503, but the process is up and finishing work.
		c.succeed(i, StateDraining)
	default:
		c.fail(i)
	}
}

func (c *Checker) succeed(i int, s ReplicaState) {
	c.checks[i].Add(1)
	c.fails[i].Store(0)
	c.setState(i, s)
}

func (c *Checker) fail(i int) {
	c.probes[i].Add(1)
	if int(c.fails[i].Add(1)) >= c.cfg.FailThreshold {
		c.setState(i, StateDead)
	}
}

func (c *Checker) setState(i int, s ReplicaState) {
	if ReplicaState(c.states[i].Swap(int32(s))) != s && c.onState != nil {
		c.onState(i, s)
	}
}

// State returns replica i's current routing state.
func (c *Checker) State(i int) ReplicaState { return ReplicaState(c.states[i].Load()) }

// States returns a snapshot of every replica's state.
func (c *Checker) States() []ReplicaState {
	out := make([]ReplicaState, len(c.urls))
	for i := range out {
		out[i] = c.State(i)
	}
	return out
}

// ReportFailure is the passive path: the router saw a transport-level
// failure talking to replica i. It counts toward the ejection threshold,
// so a killed replica is usually ejected by the first request that hits
// the dead socket instead of waiting for the next sweep.
func (c *Checker) ReportFailure(i int) {
	if int(c.fails[i].Add(1)) >= c.cfg.FailThreshold {
		c.setState(i, StateDead)
	}
}

// ReportSuccess is ReportFailure's counterpart: a proxied request got an
// HTTP response, proving the process is up. It resets the failure streak
// and revives an ejected replica (the next sweep refines healthy vs
// degraded).
func (c *Checker) ReportSuccess(i int) {
	c.fails[i].Store(0)
	if c.State(i) == StateDead {
		c.setState(i, StateHealthy)
	}
}
