// Gate-side tracing: the router joins the forwarded trace — its route
// root, per-attempt proxy spans, and failover annotations commit under
// the exact trace id it relays to the replicas, which is what the
// mrtrace -stitch mode later joins replica exports on.

package fleet

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/mapd"
	"repro/internal/obs"
	"repro/internal/obs/rt"
)

const testTraceparent = "00-1af7651916cd43dd8448eb211c80319d-b7ad6b7169203331-01"

// spansOnTrace collects the gate's committed span names on the given
// trace id's thread track.
func spansOnTrace(sc *obs.Scope, traceID string) []string {
	var names []string
	for _, sp := range sc.Spans() {
		if sc.ThreadName(sp.PID, sp.TID) == "trace "+traceID {
			names = append(names, sp.Name)
		}
	}
	return names
}

// TestGateTraceJoinsForwardedTrace: a request carrying an upstream
// traceparent produces gate route + proxy spans on that same trace id,
// and the response relays the id back.
func TestGateTraceJoinsForwardedTrace(t *testing.T) {
	tracer := rt.NewTracer(rt.Options{Service: "mrgate", SampleRatio: -1})
	_, gate, _ := newFleet(t, 2, Config{Tracer: tracer})

	req, err := http.NewRequest(http.MethodPost, gate.URL+"/v1/advise",
		strings.NewReader(`{"machine":"hydra","nodes":4,"collective":"allreduce","comm_size":16}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", testTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	id, _, flags, ok := rt.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok || id.String() != "1af7651916cd43dd8448eb211c80319d" || flags&rt.FlagSampled == 0 {
		t.Fatalf("response traceparent %q", resp.Header.Get("traceparent"))
	}

	names := spansOnTrace(tracer.Scope(), id.String())
	var haveRoute, haveProxy bool
	for _, n := range names {
		if n == "gate /v1/advise" {
			haveRoute = true
		}
		if strings.HasPrefix(n, "proxy r") {
			haveProxy = true
		}
	}
	if !haveRoute || !haveProxy {
		t.Fatalf("gate trace %s missing route/proxy spans: %v", id, names)
	}
}

// TestGateTraceFailoverSpans: with the home replica dead, the forwarded
// trace shows the failed attempt, the backoff, and the attempt that
// answered — the per-attempt story the stitched view drills into.
func TestGateTraceFailoverSpans(t *testing.T) {
	tracer := rt.NewTracer(rt.Options{Service: "mrgate", SampleRatio: -1})
	g, gate, reps := newFleet(t, 2, Config{Tracer: tracer})
	g.sleep = func(time.Duration) {}
	body := `{"machine":"hydra","nodes":4,"collective":"allreduce","comm_size":16}`

	// Kill the request's home replica so the first attempt fails over.
	key, err := mapd.RoutingKey("/v1/advise", []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	home := g.ring.Sequence(key)[0]
	reps[home].Close()

	req, err := http.NewRequest(http.MethodPost, gate.URL+"/v1/advise", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", testTraceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	names := spansOnTrace(tracer.Scope(), "1af7651916cd43dd8448eb211c80319d")
	proxies, backoffs := 0, 0
	for _, n := range names {
		if strings.HasPrefix(n, "proxy r") {
			proxies++
		}
		if n == "gate.backoff" {
			backoffs++
		}
	}
	if proxies < 2 || backoffs < 1 {
		t.Fatalf("failover trace spans = %v (want ≥2 proxy, ≥1 backoff)", names)
	}
}
