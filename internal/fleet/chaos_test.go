// The chaos e2e the whole PR exists for: three real mapd replicas behind
// the router, closed-loop client traffic, and a seeded fault plan that
// kills one replica mid-run. The fleet must absorb the kill — zero
// client-visible unretried failures, goodput back to >= 90% of the
// pre-kill steady state — and with every replica killed the router must
// still answer, flagged degraded.

package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/mapd"
	"repro/internal/obs"
)

// chaosReplica is an mrserved stand-in that can be killed and restarted
// on the same address mid-test.
type chaosReplica struct {
	name string
	addr string
	mu   sync.Mutex
	srv  *http.Server
}

func (r *chaosReplica) start(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", r.addr)
	if err != nil {
		t.Fatalf("replica %s: listen %s: %v", r.name, r.addr, err)
	}
	r.addr = ln.Addr().String()
	ms := mapd.New(mapd.Config{Name: r.name, Registry: obs.NewRegistry()})
	srv := &http.Server{Handler: ms.Handler()}
	r.mu.Lock()
	r.srv = srv
	r.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
}

func (r *chaosReplica) kill() {
	r.mu.Lock()
	srv := r.srv
	r.srv = nil
	r.mu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
}

// shotRecord is one client-observed request outcome.
type shotRecord struct {
	at       time.Duration // since run start
	code     int
	degraded bool
}

func TestChaosKillGoodputRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e runs ~1.2s of wall-clock traffic")
	}

	// The seeded kill plan: one replica, chosen and timed by the plan's
	// RNG, dies somewhere in [350ms, 450ms]. Same seed, same schedule —
	// a failing run reproduces exactly.
	plan, err := fault.Parse("seed=42;replica-chaos:kills=1,by=450ms@t=350ms")
	if err != nil {
		t.Fatal(err)
	}
	events := plan.FleetEvents(3)
	if len(events) != 1 || events[0].Kind != fault.KindReplicaKill {
		t.Fatalf("plan materialized %v, want exactly one kill", events)
	}
	kill := events[0]
	killAt := time.Duration(kill.At * float64(time.Second))

	replicas := make([]*chaosReplica, 3)
	var urls, names []string
	for i := range replicas {
		replicas[i] = &chaosReplica{name: fmt.Sprintf("r%d", i), addr: "127.0.0.1:0"}
		replicas[i].start(t)
		t.Cleanup(replicas[i].kill)
		urls = append(urls, "http://"+replicas[i].addr)
		names = append(names, replicas[i].name)
	}

	g, err := New(Config{
		Replicas:   urls,
		Names:      names,
		Backoff:    500 * time.Microsecond,
		MaxBackoff: 5 * time.Millisecond,
		Health:     HealthConfig{Interval: 50 * time.Millisecond, Timeout: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start(context.Background())
	t.Cleanup(g.Stop)
	gateLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gateSrv := &http.Server{Handler: g.Handler()}
	go func() { _ = gateSrv.Serve(gateLn) }()
	t.Cleanup(func() { _ = gateSrv.Close() })
	gateURL := "http://" + gateLn.Addr().String()

	// Closed-loop traffic: a small query mix so several distinct keys put
	// every replica in play.
	bodies := []string{
		`{"hierarchy":"2,2,4","order":"2-1-0","rank":5}`,
		`{"hierarchy":"2,4,2,8","order":"2-1-0-3","n":8}`,
		`{"hierarchy":"16,2,2,8","order":"3-2-1-0","comm_size":16}`,
		`{"hierarchy":"2,2,2","order":"0-1-2","table":true}`,
	}
	paths := []string{"/v1/map", "/v1/select", "/v1/metrics/order", "/v1/map"}

	const (
		duration = 1200 * time.Millisecond
		workers  = 4
		window   = 100 * time.Millisecond
	)
	var mu sync.Mutex
	var shots []shotRecord
	start := time.Now()

	// The executioner: fire the plan's kill at its scheduled time.
	go func() {
		time.Sleep(killAt - time.Since(start))
		replicas[kill.Target].kill()
	}()

	var wg sync.WaitGroup
	client := &http.Client{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Since(start) < duration; i++ {
				q := (w + i) % len(bodies)
				resp, err := client.Post(gateURL+paths[q], "application/json", strings.NewReader(bodies[q]))
				rec := shotRecord{at: time.Since(start)}
				if err != nil {
					rec.code = -1
				} else {
					b, _ := io.ReadAll(resp.Body)
					_ = resp.Body.Close()
					rec.code = resp.StatusCode
					rec.degraded = strings.Contains(string(b), `"degraded":true`)
				}
				mu.Lock()
				shots = append(shots, rec)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	// Invariant 1: the kill was client-invisible. Every shot either
	// succeeded or was retried into success — zero unretried failures.
	failures := 0
	for _, s := range shots {
		if s.code != http.StatusOK {
			failures++
		}
	}
	if failures != 0 {
		t.Errorf("%d of %d shots failed client-visibly; failover must absorb the kill", failures, len(shots))
	}

	// Invariant 2: goodput recovers to >= 90% of the pre-kill steady
	// state. Compare the mean of full windows before the kill against the
	// final windows, skipping the kill window itself.
	windows := make(map[int]int)
	for _, s := range shots {
		if s.code == http.StatusOK {
			windows[int(s.at/window)]++
		}
	}
	killWin := int(killAt / window)
	lastWin := int(duration/window) - 1
	var pre, post, npre, npost float64
	for wdx, n := range windows {
		switch {
		case wdx < killWin:
			pre += float64(n)
			npre++
		case wdx >= lastWin-1 && wdx <= lastWin:
			post += float64(n)
			npost++
		}
	}
	if npre == 0 || npost == 0 {
		t.Fatalf("goodput windows missing: pre=%v post=%v (windows %v)", npre, npost, windows)
	}
	preMean, postMean := pre/npre, post/npost
	t.Logf("goodput: pre-kill %.0f req/window, recovered %.0f req/window (kill of %s at %v, %d shots)",
		preMean, postMean, names[kill.Target], killAt, len(shots))
	if postMean < 0.9*preMean {
		t.Errorf("goodput did not recover: %.0f req/window after kill vs %.0f before (< 90%%)", postMean, preMean)
	}

	// Invariant 3: after recovery the surviving replicas carry the load —
	// the final windows' answers are real, not local-fallback degraded.
	for _, s := range shots {
		if int(s.at/window) >= lastWin && s.degraded {
			t.Error("post-recovery answer still served by the degraded local fallback")
			break
		}
	}

	// Phase 2: kill the whole fleet. The router must keep answering,
	// flagged degraded, and say "degraded" on its own /healthz. Stop the
	// background sweeps first: a probe that connected just before the
	// kill could otherwise land its success between the explicit sweeps
	// below and reset a failure streak.
	g.Stop()
	for _, r := range replicas {
		r.kill()
	}
	g.CheckNow(context.Background())
	g.CheckNow(context.Background()) // second sweep crosses the ejection threshold
	for i, s := range g.States() {
		if s != StateDead {
			t.Fatalf("replica %d state %v after fleet-wide kill, want dead", i, s)
		}
	}
	resp, err := client.Post(gateURL+"/v1/advise", "application/json",
		strings.NewReader(`{"machine":"hydra","nodes":4,"collective":"alltoall","comm_size":16}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advise with dead fleet: status %d, want degraded 200", resp.StatusCode)
	}
	var advise mapd.AdviseResponse
	if err := json.NewDecoder(resp.Body).Decode(&advise); err != nil {
		t.Fatal(err)
	}
	if !advise.Degraded {
		t.Error("fleet-wide outage answer not marked degraded:true")
	}
	hz, err := client.Get(gateURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	b, _ := io.ReadAll(hz.Body)
	if hz.StatusCode != http.StatusOK || !strings.Contains(string(b), "degraded") {
		t.Errorf("/healthz after fleet-wide kill: status %d body %s, want degraded 200", hz.StatusCode, b)
	}
}
