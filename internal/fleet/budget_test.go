package fleet

import "testing"

func TestBudgetStartsFullAndCaps(t *testing.T) {
	b := NewBudget(0.1, 4)
	if got := b.Tokens(); got != 4 {
		t.Fatalf("new budget has %v tokens, want full bucket of 4", got)
	}
	for i := 0; i < 100; i++ {
		b.Deposit()
	}
	if got := b.Tokens(); got != 4 {
		t.Fatalf("deposits overflowed the cap: %v tokens, want 4", got)
	}
}

func TestBudgetWithdrawDeniesWhenEmpty(t *testing.T) {
	// Ratio 0.25 is exact in binary, so the arithmetic below is too.
	b := NewBudget(0.25, 2)
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("full budget denied a withdrawal")
	}
	if b.Withdraw() {
		t.Fatal("empty budget granted a withdrawal")
	}
	// 4 requests at ratio 0.25 earn exactly one more retry.
	for i := 0; i < 4; i++ {
		b.Deposit()
	}
	if !b.Withdraw() {
		t.Fatal("replenished budget denied a withdrawal")
	}
	if b.Withdraw() {
		t.Fatal("budget granted more than the deposits earned")
	}
}

// The amplification bound: with ratio r, a sustained failure storm of N
// requests can issue at most N*r + burst retries.
func TestBudgetBoundsRetryAmplification(t *testing.T) {
	const requests = 1000
	b := NewBudget(0.1, 8)
	retries := 0
	for i := 0; i < requests; i++ {
		b.Deposit()
		// Every request fails and wants up to 3 retries.
		for a := 0; a < 3; a++ {
			if b.Withdraw() {
				retries++
			}
		}
	}
	if max := int(requests*0.1) + 8; retries > max {
		t.Errorf("%d retries for %d failing requests, budget should cap at %d", retries, requests, max)
	}
	if retries < 100 {
		t.Errorf("only %d retries granted; deposits should fund ~108", retries)
	}
}
