// Fleet-wide observability rollup: the gate scrapes every live
// replica's GET /v1/stats and GET /v1/slo, merges them under the
// mergeable-summaries rules (mapd.MergeStats for the Space-Saving
// top-K and distinct-class sketch; exact window sums with recomputed
// burn rates for the SLOs), and serves the aggregate on
// GET /v1/fleet/stats and GET /v1/fleet/slo. Each rollup also scores
// every replica against the fleet — total-variation distance of its
// shape-class mix, worst short-window burn rate — and flags outliers,
// so a single replica serving a skewed workload or burning error
// budget stands out without opening N dashboards.

package fleet

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"sync"

	"repro/internal/mapd"
	"repro/internal/obs"
	"repro/internal/obs/rt"
)

const (
	// shapeOutlierThreshold flags a replica whose shape-class mix sits at
	// least this far (total-variation distance ∈ [0, 1]) from the fleet's.
	shapeOutlierThreshold = 0.5
	// shapeOutlierMinRequests is the traffic floor below which divergence
	// is noise, not signal.
	shapeOutlierMinRequests = 32
	// burnOutlierFactor and burnOutlierFloor flag a replica burning error
	// budget out of line with the fleet: its worst short-window burn is at
	// least the floor AND at least factor × the fleet's.
	burnOutlierFactor = 4.0
	burnOutlierFloor  = 1.0
)

// ReplicaStats is one replica's row in the GET /v1/fleet/stats answer.
type ReplicaStats struct {
	Name  string `json:"name"`
	State string `json:"state"`
	// Error is set when the scrape failed (the replica is excluded from
	// the merge).
	Error string `json:"error,omitempty"`
	// TotalRequests is the replica's own request count.
	TotalRequests uint64 `json:"total_requests"`
	// ShapeDivergence is the total-variation distance between the
	// replica's shape-class distribution and the fleet's merged one.
	ShapeDivergence float64 `json:"shape_divergence"`
	// Outlier flags a divergence past shapeOutlierThreshold with enough
	// traffic to mean it.
	Outlier bool `json:"outlier"`
}

// FleetStats is the GET /v1/fleet/stats response body.
type FleetStats struct {
	Replicas   int              `json:"replicas"`
	Scraped    int              `json:"scraped"`
	Merged     mapd.StatsReport `json:"merged"`
	PerReplica []ReplicaStats   `json:"per_replica"`
}

// ReplicaSLO is one replica's row in the GET /v1/fleet/slo answer.
type ReplicaSLO struct {
	Name  string `json:"name"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// BurnRate is the replica's worst availability/latency burn across
	// its endpoints in the shortest window.
	BurnRate float64 `json:"burn_rate"`
	// BurnOutlier flags a burn rate at least burnOutlierFloor and at
	// least burnOutlierFactor × the fleet's.
	BurnOutlier bool `json:"burn_outlier"`
}

// FleetSLO is the GET /v1/fleet/slo response body: the replicas' SLO
// windows merged by summing raw counts and recomputing burn rates —
// exactly the burn a single tracker observing the union stream would
// report.
type FleetSLO struct {
	AvailabilityTarget float64          `json:"availability_target"`
	LatencyThreshold   string           `json:"latency_threshold"`
	LatencyObjective   float64          `json:"latency_objective"`
	FastBurnFactor     float64          `json:"fast_burn_factor"`
	FastBurning        bool             `json:"fast_burning"`
	Replicas           int              `json:"replicas"`
	Scraped            int              `json:"scraped"`
	Endpoints          []rt.EndpointSLO `json:"endpoints"`
	PerReplica         []ReplicaSLO     `json:"per_replica"`
}

// scrapeJSON fetches one replica-local JSON endpoint under the scrape
// timeout.
func (g *Router) scrapeJSON(ctx context.Context, idx int, path string, v any) error {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.ScrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, g.cfg.Replicas[idx]+path, nil)
	if err != nil {
		return err
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &scrapeError{path: path, status: resp.StatusCode}
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

type scrapeError struct {
	path   string
	status int
}

func (e *scrapeError) Error() string {
	return "scrape " + e.path + ": status " + http.StatusText(e.status)
}

// scrapeAll runs fn concurrently against every non-dead replica and
// returns the per-replica error slots (nil = scraped; a sentinel string
// marks replicas skipped as dead).
func (g *Router) scrapeAll(ctx context.Context, fn func(ctx context.Context, idx int) error) []string {
	errs := make([]string, len(g.cfg.Replicas))
	var wg sync.WaitGroup
	for i := range g.cfg.Replicas {
		if g.checker.State(i) == StateDead {
			errs[i] = "not scraped: replica is dead"
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := fn(ctx, i); err != nil {
				errs[i] = err.Error()
				g.reg.Counter("fleet_scrape_errors_total").Add(1)
			}
		}(i)
	}
	wg.Wait()
	return errs
}

// classDistribution normalizes a report's tracked classes into a
// probability distribution over shapes.
func classDistribution(r mapd.StatsReport) map[string]float64 {
	var tot uint64
	for _, c := range r.Classes {
		tot += c.Requests
	}
	if tot == 0 {
		return nil
	}
	dist := make(map[string]float64, len(r.Classes))
	for _, c := range r.Classes {
		dist[c.Shape] = float64(c.Requests) / float64(tot)
	}
	return dist
}

// tvDistance is the total-variation distance ½·Σ|p−q| over the union of
// the two supports, ∈ [0, 1].
func tvDistance(p, q map[string]float64) float64 {
	var sum float64
	for k, pv := range p {
		sum += math.Abs(pv - q[k])
	}
	for k, qv := range q {
		if _, ok := p[k]; !ok {
			sum += qv
		}
	}
	return sum / 2
}

// serveFleetStats scrapes, merges, scores, and answers
// GET /v1/fleet/stats.
func (g *Router) serveFleetStats(ctx context.Context, w http.ResponseWriter) {
	reports := make([]*mapd.StatsReport, len(g.cfg.Replicas))
	errs := g.scrapeAll(ctx, func(ctx context.Context, i int) error {
		var rep mapd.StatsReport
		if err := g.scrapeJSON(ctx, i, "/v1/stats", &rep); err != nil {
			return err
		}
		reports[i] = &rep
		return nil
	})

	var scraped []mapd.StatsReport
	for _, r := range reports {
		if r != nil {
			scraped = append(scraped, *r)
		}
	}
	out := FleetStats{
		Replicas: len(g.cfg.Replicas),
		Scraped:  len(scraped),
		Merged:   mapd.MergeStats(scraped),
	}
	fleetDist := classDistribution(out.Merged)
	for i := range g.cfg.Replicas {
		rs := ReplicaStats{Name: g.cfg.Names[i], State: g.checker.State(i).String(), Error: errs[i]}
		if r := reports[i]; r != nil {
			rs.TotalRequests = r.TotalRequests
			rs.ShapeDivergence = tvDistance(classDistribution(*r), fleetDist)
			rs.Outlier = rs.ShapeDivergence >= shapeOutlierThreshold &&
				r.TotalRequests >= shapeOutlierMinRequests
		}
		g.noteShape(i, rs.ShapeDivergence, rs.Outlier)
		out.PerReplica = append(out.PerReplica, rs)
	}
	writeFleetJSON(w, out)
}

// serveFleetSLO scrapes, merges, scores, and answers GET /v1/fleet/slo.
func (g *Router) serveFleetSLO(ctx context.Context, w http.ResponseWriter) {
	reports := make([]*rt.SLOReport, len(g.cfg.Replicas))
	errs := g.scrapeAll(ctx, func(ctx context.Context, i int) error {
		var rep rt.SLOReport
		if err := g.scrapeJSON(ctx, i, "/v1/slo", &rep); err != nil {
			return err
		}
		reports[i] = &rep
		return nil
	})

	var scraped []rt.SLOReport
	for _, r := range reports {
		if r != nil {
			scraped = append(scraped, *r)
		}
	}
	out := mergeSLO(scraped)
	out.Replicas = len(g.cfg.Replicas)
	out.Scraped = len(scraped)
	fleetBurn := worstShortBurn(out.Endpoints)
	for i := range g.cfg.Replicas {
		rs := ReplicaSLO{Name: g.cfg.Names[i], State: g.checker.State(i).String(), Error: errs[i]}
		if r := reports[i]; r != nil {
			rs.BurnRate = worstShortBurn(r.Endpoints)
			rs.BurnOutlier = rs.BurnRate >= burnOutlierFloor &&
				rs.BurnRate >= burnOutlierFactor*fleetBurn
		}
		g.noteBurn(i, rs.BurnRate, rs.BurnOutlier)
		out.PerReplica = append(out.PerReplica, rs)
	}
	writeFleetJSON(w, out)
}

// rollupNote is the retained per-replica score of the last rollups.
type rollupNote struct {
	shapeDivergence float64
	shapeOutlier    bool
	burnRate        float64
	burnOutlier     bool
}

func (g *Router) noteShape(i int, div float64, outlier bool) {
	g.rollupMu.Lock()
	g.notes[i].shapeDivergence = div
	g.notes[i].shapeOutlier = outlier
	n := g.notes[i]
	g.rollupMu.Unlock()
	g.publishNote(i, n)
}

func (g *Router) noteBurn(i int, rate float64, outlier bool) {
	g.rollupMu.Lock()
	g.notes[i].burnRate = rate
	g.notes[i].burnOutlier = outlier
	n := g.notes[i]
	g.rollupMu.Unlock()
	g.publishNote(i, n)
}

// publishNote mirrors a replica's rollup score into the fleet gauges.
// The outlier gauge is the OR of the shape and burn flags — either kind
// of divergence marks the replica.
func (g *Router) publishNote(i int, n rollupNote) {
	l := obs.L("replica", g.cfg.Names[i])
	g.reg.Gauge("fleet_replica_shape_divergence", l).Set(n.shapeDivergence)
	g.reg.Gauge("fleet_replica_burn_rate", l).Set(n.burnRate)
	g.reg.Gauge("fleet_replica_outlier", l).Set(float64(b2i64(n.shapeOutlier || n.burnOutlier)))
}

// mergeSLO sums the replicas' raw window counts per endpoint×window and
// recomputes availability and burn rates against the (shared) targets.
func mergeSLO(reports []rt.SLOReport) FleetSLO {
	out := FleetSLO{}
	if len(reports) == 0 {
		return out
	}
	out.AvailabilityTarget = reports[0].AvailabilityTarget
	out.LatencyThreshold = reports[0].LatencyThreshold
	out.LatencyObjective = reports[0].LatencyObjective
	out.FastBurnFactor = reports[0].FastBurnFactor

	type cell struct{ requests, errors, slow uint64 }
	sums := map[string]map[string]*cell{} // endpoint → window → counts
	var epOrder []string
	winOrder := map[string][]string{}
	for _, r := range reports {
		for _, ep := range r.Endpoints {
			wins := sums[ep.Endpoint]
			if wins == nil {
				wins = map[string]*cell{}
				sums[ep.Endpoint] = wins
				epOrder = append(epOrder, ep.Endpoint)
			}
			for _, w := range ep.Windows {
				c := wins[w.Window]
				if c == nil {
					c = &cell{}
					wins[w.Window] = c
					winOrder[ep.Endpoint] = append(winOrder[ep.Endpoint], w.Window)
				}
				c.requests += w.Requests
				c.errors += w.Errors
				c.slow += w.Slow
			}
		}
	}
	for _, ep := range epOrder {
		merged := rt.EndpointSLO{Endpoint: ep}
		for _, win := range winOrder[ep] {
			c := sums[ep][win]
			ws := rt.WindowSLO{
				Window:           win,
				Requests:         c.requests,
				Errors:           c.errors,
				Slow:             c.slow,
				Availability:     1,
				AvailabilityBurn: burn(c.errors, c.requests, out.AvailabilityTarget),
				LatencyBurn:      burn(c.slow, c.requests, out.LatencyObjective),
			}
			if c.requests > 0 {
				ws.Availability = float64(c.requests-c.errors) / float64(c.requests)
			}
			merged.Windows = append(merged.Windows, ws)
		}
		out.Endpoints = append(out.Endpoints, merged)
		// The merged fast-burn page condition mirrors the replicas' own:
		// both of the two shortest windows at or above the factor.
		if len(merged.Windows) >= 2 && out.FastBurnFactor > 0 {
			w0, w1 := merged.Windows[0], merged.Windows[1]
			availFast := w0.AvailabilityBurn >= out.FastBurnFactor && w1.AvailabilityBurn >= out.FastBurnFactor
			latFast := w0.LatencyBurn >= out.FastBurnFactor && w1.LatencyBurn >= out.FastBurnFactor
			if availFast || latFast {
				out.FastBurning = true
			}
		}
	}
	return out
}

// burn is the SRE burn rate: (bad fraction) / (error budget).
func burn(bad, total uint64, objective float64) float64 {
	if total == 0 {
		return 0
	}
	budget := 1 - objective
	if budget <= 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / budget
}

// worstShortBurn is the worst availability/latency burn across the
// endpoints' shortest windows — the number the outlier comparison and
// the fleet_replica_burn_rate gauge use.
func worstShortBurn(eps []rt.EndpointSLO) float64 {
	var worst float64
	for _, ep := range eps {
		if len(ep.Windows) == 0 {
			continue
		}
		w := ep.Windows[0]
		if w.AvailabilityBurn > worst {
			worst = w.AvailabilityBurn
		}
		if w.LatencyBurn > worst {
			worst = w.LatencyBurn
		}
	}
	return worst
}

func writeFleetJSON(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(b, '\n'))
}
