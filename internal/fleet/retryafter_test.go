package fleet

import (
	"net/http"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		v    string
		want time.Duration
		ok   bool
	}{
		{"empty", "", 0, false},
		{"zero seconds", "0", 0, true},
		{"seconds", "120", 120 * time.Second, true},
		{"negative seconds", "-3", 0, false},
		{"garbage", "soon", 0, false},
		{"fractional rejected", "1.5", 0, false},
		{"http-date future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{"http-date past clamps", now.Add(-time.Hour).Format(http.TimeFormat), 0, true},
		{"ansi-c date", now.Add(30 * time.Second).Format(time.ANSIC), 30 * time.Second, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := ParseRetryAfter(tc.v, now)
			if ok != tc.ok || got != tc.want {
				t.Fatalf("ParseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.v, got, ok, tc.want, tc.ok)
			}
		})
	}
}
