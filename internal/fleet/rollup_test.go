// Fleet rollup: merged /v1/fleet/stats and /v1/fleet/slo answers,
// per-replica outlier scoring, scrape-failure handling, and the
// promtool-style lint of the fleet_* exposition.

package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/mapd"
	"repro/internal/obs"
	"repro/internal/obs/rt"
)

// newStubFleet builds a router over stub replicas that answer /healthz
// healthy and serve the given fixed /v1/stats and /v1/slo documents.
func newStubFleet(t *testing.T, stats []mapd.StatsReport, slos []rt.SLOReport) (*Router, *httptest.Server) {
	t.Helper()
	n := len(stats)
	if n == 0 {
		n = len(slos)
	}
	var urls []string
	for i := 0; i < n; i++ {
		i := i
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			_, _ = w.Write([]byte(`{"status":"healthy"}`))
		})
		mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
			if i >= len(stats) {
				http.Error(w, "no stats", http.StatusInternalServerError)
				return
			}
			b, _ := json.Marshal(stats[i])
			_, _ = w.Write(b)
		})
		mux.HandleFunc("/v1/slo", func(w http.ResponseWriter, r *http.Request) {
			if i >= len(slos) {
				http.Error(w, "no slo", http.StatusInternalServerError)
				return
			}
			b, _ := json.Marshal(slos[i])
			_, _ = w.Write(b)
		})
		ts := httptest.NewServer(mux)
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	g, err := New(Config{Replicas: urls, Health: HealthConfig{Interval: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	gate := httptest.NewServer(g.Handler())
	t.Cleanup(gate.Close)
	return g, gate
}

func gateGet(t *testing.T, gate *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(gate.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// stubStats builds a minimal replica stats report whose summary is not
// full (no eviction floors), so merges are exact.
func stubStats(total uint64, classes ...mapd.ClassReport) mapd.StatsReport {
	return mapd.StatsReport{
		TotalRequests:  total,
		TrackedClasses: len(classes),
		MaxClasses:     mapd.DefaultStatsClasses,
		Classes:        classes,
		Collectives:    map[string]uint64{"alltoall": total},
		SearchModes:    map[string]uint64{},
		Endpoints:      map[string]uint64{"advise": total},
	}
}

// TestFleetStatsGolden pins the merged /v1/fleet/stats answer over two
// deterministic replicas: exact class sums, per-replica divergence, and
// an outlier flag on the replica whose shape mix diverges from the
// fleet's with enough traffic to mean it.
func TestFleetStatsGolden(t *testing.T) {
	r0 := stubStats(180,
		mapd.ClassReport{Shape: "2,2", Requests: 90, CacheHits: 45, CacheHitRate: 0.5, P50Ms: 1, P99Ms: 2},
		mapd.ClassReport{Shape: "3,3", Requests: 90, P50Ms: 2, P99Ms: 3},
	)
	r1 := stubStats(40,
		mapd.ClassReport{Shape: "9,9", Requests: 40, P50Ms: 5, P99Ms: 9},
	)
	_, gate := newStubFleet(t, []mapd.StatsReport{r0, r1}, nil)
	code, body := gateGet(t, gate, "/v1/fleet/stats")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var got FleetStats
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Replicas != 2 || got.Scraped != 2 {
		t.Fatalf("replicas/scraped = %d/%d", got.Replicas, got.Scraped)
	}
	if got.Merged.TotalRequests != 220 {
		t.Fatalf("merged total %d", got.Merged.TotalRequests)
	}
	wantClasses := []mapd.ClassReport{
		{Shape: "2,2", Requests: 90, CacheHits: 45, CacheHitRate: 0.5, P50Ms: 1, P99Ms: 2},
		{Shape: "3,3", Requests: 90, P50Ms: 2, P99Ms: 3},
		{Shape: "9,9", Requests: 40, P50Ms: 5, P99Ms: 9},
	}
	if len(got.Merged.Classes) != len(wantClasses) {
		t.Fatalf("merged classes = %+v", got.Merged.Classes)
	}
	for i, want := range wantClasses {
		if got.Merged.Classes[i] != want {
			t.Fatalf("merged class %d = %+v, want %+v", i, got.Merged.Classes[i], want)
		}
	}
	if got.Merged.Collectives["alltoall"] != 220 || got.Merged.Endpoints["advise"] != 220 {
		t.Fatalf("merged histograms = %+v / %+v", got.Merged.Collectives, got.Merged.Endpoints)
	}
	if len(got.PerReplica) != 2 {
		t.Fatalf("per_replica = %+v", got.PerReplica)
	}
	p0, p1 := got.PerReplica[0], got.PerReplica[1]
	if p0.Name != "r0" || p0.State != "healthy" || p0.TotalRequests != 180 {
		t.Fatalf("r0 row = %+v", p0)
	}
	// r0 tracks the fleet mix closely; r1 serves a disjoint shape with
	// enough traffic to clear the noise floor.
	if p0.Outlier || p0.ShapeDivergence >= shapeOutlierThreshold {
		t.Fatalf("r0 flagged an outlier: %+v", p0)
	}
	if !p1.Outlier || p1.ShapeDivergence < shapeOutlierThreshold {
		t.Fatalf("r1 not flagged an outlier: %+v", p1)
	}

	// /v1/fleet reflects the rollup's scores.
	code, body = gateGet(t, gate, "/v1/fleet")
	if code != http.StatusOK {
		t.Fatalf("/v1/fleet status %d", code)
	}
	if !strings.Contains(body, `"outlier":true`) || !strings.Contains(body, `"shape_divergence"`) {
		t.Fatalf("/v1/fleet missing rollup scores: %s", body)
	}
}

// stubSLO builds a single-endpoint SLO report with the given counts in
// two windows.
func stubSLO(requests, errors uint64) rt.SLOReport {
	win := func(w string) rt.WindowSLO {
		ws := rt.WindowSLO{
			Window: w, Requests: requests, Errors: errors,
			Availability:     1,
			AvailabilityBurn: float64(errors) / float64(requests) / 0.001,
		}
		if requests > 0 {
			ws.Availability = float64(requests-errors) / float64(requests)
		}
		return ws
	}
	return rt.SLOReport{
		AvailabilityTarget: 0.999,
		LatencyThreshold:   "250ms",
		LatencyObjective:   0.99,
		FastBurnFactor:     14,
		Endpoints: []rt.EndpointSLO{{
			Endpoint: "advise",
			Windows:  []rt.WindowSLO{win("1m0s"), win("5m0s")},
		}},
	}
}

// TestFleetSLORollup: windows merge by summing raw counts with burn
// rates recomputed on the union, and a replica burning far above the
// fleet is flagged burn_outlier.
func TestFleetSLORollup(t *testing.T) {
	quiet := stubSLO(10000, 0)
	burning := stubSLO(100, 50) // burn 500 vs fleet ≈ 4.95
	_, gate := newStubFleet(t, nil, []rt.SLOReport{quiet, burning})
	code, body := gateGet(t, gate, "/v1/fleet/slo")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var got FleetSLO
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.AvailabilityTarget != 0.999 || got.Scraped != 2 {
		t.Fatalf("header = %+v", got)
	}
	if len(got.Endpoints) != 1 || len(got.Endpoints[0].Windows) != 2 {
		t.Fatalf("endpoints = %+v", got.Endpoints)
	}
	w := got.Endpoints[0].Windows[0]
	if w.Requests != 10100 || w.Errors != 50 {
		t.Fatalf("merged window = %+v", w)
	}
	wantBurn := (50.0 / 10100.0) / 0.001
	if w.AvailabilityBurn < wantBurn-1e-9 || w.AvailabilityBurn > wantBurn+1e-9 {
		t.Fatalf("merged burn %v, want %v", w.AvailabilityBurn, wantBurn)
	}
	if got.FastBurning {
		t.Fatalf("fleet flagged fast-burning at burn %v", w.AvailabilityBurn)
	}
	if len(got.PerReplica) != 2 {
		t.Fatalf("per_replica = %+v", got.PerReplica)
	}
	if got.PerReplica[0].BurnOutlier {
		t.Fatalf("quiet replica flagged: %+v", got.PerReplica[0])
	}
	wantRep := (50.0 / 100.0) / 0.001
	if !got.PerReplica[1].BurnOutlier || got.PerReplica[1].BurnRate != wantRep {
		t.Fatalf("burning replica not flagged: %+v", got.PerReplica[1])
	}
}

// TestFleetRollupScrapeFailure: a replica that fails its scrape is
// excluded from the merge, reported with the error, and counted.
func TestFleetRollupScrapeFailure(t *testing.T) {
	r0 := stubStats(100, mapd.ClassReport{Shape: "2,2", Requests: 100})
	g, gate := newStubFleet(t, []mapd.StatsReport{r0}, nil)
	// Second replica: /v1/stats 500s (the stub has no document for it).
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"status":"healthy"}`))
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	g2, err := New(Config{Replicas: []string{g.cfg.Replicas[0], ts.URL}, Health: HealthConfig{Interval: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	gate2 := httptest.NewServer(g2.Handler())
	t.Cleanup(gate2.Close)
	_ = gate

	code, body := gateGet(t, gate2, "/v1/fleet/stats")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var got FleetStats
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Scraped != 1 || got.Merged.TotalRequests != 100 {
		t.Fatalf("merge included the failed replica: %+v", got)
	}
	if got.PerReplica[1].Error == "" {
		t.Fatalf("failed scrape not reported: %+v", got.PerReplica[1])
	}
}

// TestFleetExpositionLint: the gate's /metrics passes the promtool-style
// lint and every fleet_* metric with samples carries a HELP line —
// including the rollup gauges, which only appear after a rollup ran.
func TestFleetExpositionLint(t *testing.T) {
	r0 := stubStats(100, mapd.ClassReport{Shape: "2,2", Requests: 100})
	_, gate := newStubFleet(t, []mapd.StatsReport{r0}, []rt.SLOReport{stubSLO(100, 1)})
	gateGet(t, gate, "/v1/fleet/stats")
	gateGet(t, gate, "/v1/fleet/slo")
	code, out := gateGet(t, gate, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: %d", code)
	}
	if _, err := obs.LintPrometheus(out); err != nil {
		t.Fatalf("fleet exposition fails lint: %v", err)
	}
	for _, name := range []string{"fleet_replica_shape_divergence", "fleet_replica_burn_rate", "fleet_replica_outlier"} {
		if !strings.Contains(out, name) {
			t.Fatalf("exposition missing rollup gauge %s", name)
		}
	}
	if missing := obs.MissingHelp(out, "fleet_"); len(missing) != 0 {
		t.Fatalf("fleet_* metrics missing HELP: %v", missing)
	}
}
