package fleet

import (
	"strconv"
	"testing"
)

func TestSequenceCoversAllReplicasOnce(t *testing.T) {
	r := NewRing(5, 0)
	for k := 0; k < 50; k++ {
		key := "key-" + strconv.Itoa(k)
		seq := r.Sequence(key)
		if len(seq) != 5 {
			t.Fatalf("key %q: sequence %v has %d entries, want 5", key, seq, len(seq))
		}
		seen := map[int]bool{}
		for _, i := range seq {
			if i < 0 || i >= 5 || seen[i] {
				t.Fatalf("key %q: sequence %v is not a permutation of replicas", key, seq)
			}
			seen[i] = true
		}
		if home := r.Home(key); home != seq[0] {
			t.Fatalf("key %q: Home() = %d but Sequence()[0] = %d", key, home, seq[0])
		}
	}
}

func TestRingDeterministicAcrossInstances(t *testing.T) {
	a, b := NewRing(4, 64), NewRing(4, 64)
	for k := 0; k < 100; k++ {
		key := "q" + strconv.Itoa(k)
		sa, sb := a.Sequence(key), b.Sequence(key)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("key %q: rings disagree: %v vs %v", key, sa, sb)
			}
		}
	}
}

// Keys should spread across replicas roughly evenly — the warm-cache
// locality argument collapses if one replica owns most of the key space.
func TestRingBalance(t *testing.T) {
	const n, keys = 3, 3000
	r := NewRing(n, 0)
	counts := make([]int, n)
	for k := 0; k < keys; k++ {
		counts[r.Home("matrix|digest-"+strconv.Itoa(k))]++
	}
	for i, c := range counts {
		frac := float64(c) / keys
		if frac < 0.20 || frac > 0.47 {
			t.Errorf("replica %d owns %.1f%% of keys (counts %v), outside [20%%, 47%%]", i, 100*frac, counts)
		}
	}
}

// Removing one replica from the candidate set must not move keys homed on
// the survivors: consistent hashing's whole point. The router's candidate
// filter preserves ring order, so the first surviving replica in a key's
// sequence is its post-failure owner.
func TestRingStabilityUnderFailure(t *testing.T) {
	r := NewRing(4, 0)
	const dead = 2
	moved := 0
	for k := 0; k < 500; k++ {
		seq := r.Sequence("key-" + strconv.Itoa(k))
		owner := seq[0]
		if owner == dead {
			continue // those keys must move; everyone else's must not
		}
		surviving := owner
		for _, i := range seq {
			if i != dead {
				surviving = i
				break
			}
		}
		if surviving != owner {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys homed on survivors moved when replica %d died", moved, dead)
	}
}

func TestEmptyRing(t *testing.T) {
	r := NewRing(0, 0)
	if seq := r.Sequence("x"); seq != nil {
		t.Errorf("empty ring Sequence = %v, want nil", seq)
	}
	if home := r.Home("x"); home != -1 {
		t.Errorf("empty ring Home = %d, want -1", home)
	}
}
