// Retry-After parsing shared by the router and load clients. RFC 9110
// §10.2.3 allows two forms — delay-seconds ("120") and an HTTP-date
// ("Fri, 08 Aug 2026 10:00:00 GMT") — and real proxies emit both, so
// accepting only the integer form silently drops the hint and falls
// back to the default backoff curve.

package fleet

import (
	"net/http"
	"strconv"
	"time"
)

// ParseRetryAfter interprets a Retry-After header value as a delay
// relative to now. It accepts the delay-seconds form (a non-negative
// integer) and the HTTP-date forms understood by http.ParseTime; a date
// already in the past clamps to zero rather than producing a negative
// delay. The second return is false when the value is absent or
// unparseable, in which case callers keep their own backoff.
func ParseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	t, err := http.ParseTime(v)
	if err != nil {
		return 0, false
	}
	d := t.Sub(now)
	if d < 0 {
		d = 0
	}
	return d, true
}
