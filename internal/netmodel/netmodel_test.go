package netmodel

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// testSpec is a small ⟦2,2,4⟧ machine with round capacities so expected
// durations can be computed by hand:
// NIC 10 GB/s, inter-socket uplink 20 GB/s, node bus 50 GB/s,
// socket memory bus 30 GB/s.
func testSpec() Spec {
	return Spec{
		Name: "test",
		Levels: []LevelSpec{
			{Name: "node", Arity: 2, UpBandwidth: 10e9, BusBandwidth: 50e9, Latency: 2e-6},
			{Name: "socket", Arity: 2, UpBandwidth: 20e9, BusBandwidth: 30e9, Latency: 1e-6, MemBandwidth: 30e9},
			{Name: "core", Arity: 4, Latency: 0.1e-6},
		},
		CoreFlops: 1e9,
	}
}

func run(t *testing.T, body func(e *sim.Engine, p *Platform)) *sim.Engine {
	t.Helper()
	e := sim.NewEngine()
	p := NewPlatform(e, testSpec())
	body(e, p)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return e
}

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.9g, want %.9g (±%.1g)", name, got, want, tol)
	}
}

func TestSingleFlowSameSocket(t *testing.T) {
	var end float64
	run(t, func(e *sim.Engine, p *Platform) {
		e.Spawn("r", func(proc *sim.Process) {
			p.Transfer(proc, 0, 1, 3e9)
			end = proc.Now()
		})
	})
	// 3 GB over the 30 GB/s socket bus + 0.1 µs latency.
	approx(t, "same-socket transfer", end, 0.1+0.1e-6, 1e-9)
}

func TestSingleFlowCrossSocket(t *testing.T) {
	var end float64
	run(t, func(e *sim.Engine, p *Platform) {
		e.Spawn("r", func(proc *sim.Process) {
			p.Transfer(proc, 0, 4, 3e9)
			end = proc.Now()
		})
	})
	// Bottleneck: 20 GB/s socket uplink; latency 1 µs.
	approx(t, "cross-socket transfer", end, 0.15+1e-6, 1e-9)
}

func TestSingleFlowCrossNode(t *testing.T) {
	var end float64
	run(t, func(e *sim.Engine, p *Platform) {
		e.Spawn("r", func(proc *sim.Process) {
			p.Transfer(proc, 0, 8, 3e9)
			end = proc.Now()
		})
	})
	// Bottleneck: 10 GB/s NIC; latency 2 µs.
	approx(t, "cross-node transfer", end, 0.3+2e-6, 1e-9)
}

func TestTwoFlowsShareNIC(t *testing.T) {
	var e1, e2 float64
	run(t, func(e *sim.Engine, p *Platform) {
		e.Spawn("a", func(proc *sim.Process) {
			p.Transfer(proc, 0, 8, 3e9)
			e1 = proc.Now()
		})
		e.Spawn("b", func(proc *sim.Process) {
			p.Transfer(proc, 1, 9, 3e9)
			e2 = proc.Now()
		})
	})
	// Both flows share the node-0 NIC: 5 GB/s each.
	approx(t, "flow a", e1, 0.6+2e-6, 1e-8)
	approx(t, "flow b", e2, 0.6+2e-6, 1e-8)
}

func TestMaxMinUnevenShare(t *testing.T) {
	// Flow 1 (0→1) uses only the socket bus; flow 2 (0→8) is NIC-limited
	// to 10 GB/s, so flow 1 gets the remaining 20 GB/s of the 30 GB/s bus.
	var e1, e2 float64
	run(t, func(e *sim.Engine, p *Platform) {
		e.Spawn("a", func(proc *sim.Process) {
			p.Transfer(proc, 0, 1, 3e9)
			e1 = proc.Now()
		})
		e.Spawn("b", func(proc *sim.Process) {
			p.Transfer(proc, 0, 8, 3e9)
			e2 = proc.Now()
		})
	})
	// Tolerances absorb the latency stagger: flow 1 runs alone at 30 GB/s
	// for the 1.9 µs before flow 2's higher-latency start.
	approx(t, "bus-only flow", e1, 0.15, 5e-6)
	approx(t, "NIC-limited flow", e2, 0.3, 5e-6)
}

func TestWorkConservationAfterDeparture(t *testing.T) {
	// Two equal flows share the NIC; when the shorter one finishes the
	// longer one speeds up to the full 10 GB/s.
	var end float64
	run(t, func(e *sim.Engine, p *Platform) {
		e.Spawn("short", func(proc *sim.Process) {
			p.Transfer(proc, 0, 8, 1e9)
		})
		e.Spawn("long", func(proc *sim.Process) {
			p.Transfer(proc, 1, 9, 3e9)
			end = proc.Now()
		})
	})
	// Phase 1: both at 5 GB/s until short done at t=0.2 (+lat).
	// Long has 2e9 left, now at 10 GB/s: +0.2 s. Total ≈ 0.4 s.
	approx(t, "long flow end", end, 0.4+2e-6, 1e-7)
}

func TestZeroByteTransfer(t *testing.T) {
	var end float64
	run(t, func(e *sim.Engine, p *Platform) {
		e.Spawn("r", func(proc *sim.Process) {
			p.Transfer(proc, 0, 8, 0)
			end = proc.Now()
		})
	})
	approx(t, "zero-byte transfer", end, 2e-6, 1e-12)
}

func TestSameCoreTransferPureLatency(t *testing.T) {
	var end float64
	run(t, func(e *sim.Engine, p *Platform) {
		e.Spawn("r", func(proc *sim.Process) {
			p.Transfer(proc, 3, 3, 5e9)
			end = proc.Now()
		})
	})
	// Same core: empty path, pure intra-level latency.
	approx(t, "same-core transfer", end, 0.1e-6, 1e-12)
}

func TestStaggeredArrival(t *testing.T) {
	// Second flow arrives halfway through the first.
	var e1 float64
	run(t, func(e *sim.Engine, p *Platform) {
		e.Spawn("a", func(proc *sim.Process) {
			p.Transfer(proc, 0, 8, 2e9) // alone: 10 GB/s
			e1 = proc.Now()
		})
		e.Spawn("b", func(proc *sim.Process) {
			proc.Wait(0.1)
			p.Transfer(proc, 1, 9, 2e9)
		})
	})
	// Flow a: 1e9 done at t=0.1, then shares at 5 GB/s: 1e9 more takes 0.2.
	approx(t, "staggered flow a", e1, 0.3+2e-6, 1e-7)
}

func TestComputeRoofline(t *testing.T) {
	var tMem, tFlop float64
	run(t, func(e *sim.Engine, p *Platform) {
		e.Spawn("mem", func(proc *sim.Process) {
			p.Compute(proc, 0, 1e9, 3e9) // mem: 0.1 s, flops: 1 s → 1 s
			tFlop = proc.Now()
		})
		e.Spawn("mem2", func(proc *sim.Process) {
			proc.Wait(2)
			start := proc.Now()
			p.Compute(proc, 4, 0.1e9, 6e9) // mem: 0.2 s dominates
			tMem = proc.Now() - start
		})
	})
	approx(t, "flop-bound compute", tFlop, 1.0, 1e-6)
	approx(t, "mem-bound compute", tMem, 0.2, 1e-6)
}

func TestComputeContention(t *testing.T) {
	// Two ranks in the same socket share its 30 GB/s memory bandwidth;
	// a rank in the other socket does not.
	var t0, t1, t4 float64
	run(t, func(e *sim.Engine, p *Platform) {
		e.Spawn("r0", func(proc *sim.Process) {
			p.Compute(proc, 0, 0, 3e9)
			t0 = proc.Now()
		})
		e.Spawn("r1", func(proc *sim.Process) {
			p.Compute(proc, 1, 0, 3e9)
			t1 = proc.Now()
		})
		e.Spawn("r4", func(proc *sim.Process) {
			p.Compute(proc, 4, 0, 3e9)
			t4 = proc.Now()
		})
	})
	approx(t, "contended rank 0", t0, 0.2, 1e-7)
	approx(t, "contended rank 1", t1, 0.2, 1e-7)
	approx(t, "uncontended rank 4", t4, 0.1, 1e-7)
}

func TestCommPathStructure(t *testing.T) {
	e := sim.NewEngine()
	p := NewPlatform(e, testSpec())
	path, lat := p.CommPath(0, 1)
	if len(path) != 1 || lat != 0.1e-6 {
		t.Errorf("same-socket path = %v, lat %v", path, lat)
	}
	path, lat = p.CommPath(0, 4)
	if len(path) != 5 || lat != 1e-6 {
		t.Errorf("cross-socket path has %d links (%v), lat %v", len(path), path, lat)
	}
	path, lat = p.CommPath(0, 8)
	// bus(s0) out(s0) out(n0) in(n1) in(s2) bus(s2): fabric unlimited → absent.
	if len(path) != 6 || lat != 2e-6 {
		t.Errorf("cross-node path has %d links (%v), lat %v", len(path), path, lat)
	}
}

func TestFabricLink(t *testing.T) {
	spec := testSpec()
	spec.FabricBandwidth = 5e9
	e := sim.NewEngine()
	p := NewPlatform(e, spec)
	path, _ := p.CommPath(0, 8)
	found := false
	for _, l := range path {
		if l.Name == "fabric" {
			found = true
		}
	}
	if !found {
		t.Error("fabric link missing from inter-node path")
	}
	var end float64
	e.Spawn("r", func(proc *sim.Process) {
		p.Transfer(proc, 0, 8, 1e9)
		end = proc.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	approx(t, "fabric-limited transfer", end, 0.2+2e-6, 1e-8)
}

func TestNICsPerNodeDoublesBandwidth(t *testing.T) {
	spec := testSpec()
	spec.NICsPerNode = 2
	e := sim.NewEngine()
	p := NewPlatform(e, spec)
	var end float64
	e.Spawn("r", func(proc *sim.Process) {
		p.Transfer(proc, 0, 8, 3e9)
		end = proc.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Two NICs: node uplink 20 GB/s, bottleneck now socket uplink 20 GB/s.
	approx(t, "2-NIC transfer", end, 0.15+2e-6, 1e-8)
}

func TestManyFlowsAggregate(t *testing.T) {
	// 8 ranks of node 0 all send to node 1: NIC splits 8 ways, everything
	// finishes together, at full NIC utilization.
	var last float64
	run(t, func(e *sim.Engine, p *Platform) {
		for i := 0; i < 8; i++ {
			src := i
			e.Spawn("s", func(proc *sim.Process) {
				p.Transfer(proc, src, 8+src, 1e9)
				if proc.Now() > last {
					last = proc.Now()
				}
			})
		}
	})
	// 8 GB total through a 10 GB/s NIC.
	approx(t, "aggregate completion", last, 0.8+2e-6, 1e-7)
}

func TestSpecHierarchy(t *testing.T) {
	h := testSpec().Hierarchy()
	if h.Size() != 16 || h.Depth() != 3 {
		t.Errorf("hierarchy %v", h)
	}
	if h.Level(0).Name != "node" {
		t.Errorf("level names %v", h.Names())
	}
}

func BenchmarkContendedFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine()
		p := NewPlatform(e, testSpec())
		for j := 0; j < 64; j++ {
			src := j % 8
			dst := 8 + (j+3)%8
			e.Spawn("s", func(proc *sim.Process) {
				p.Transfer(proc, src, dst, 1e8)
			})
		}
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
