// Package netmodel simulates the communication and memory fabric of a
// hierarchical machine as a fluid-flow network: every link (NIC, inter-
// socket bus, shared memory of a NUMA/L3 domain, …) has a capacity in
// bytes per second, every in-flight message is a flow over a path of
// links, and concurrent flows share link capacity max-min fairly
// (progressive filling), the standard fluid model for steady collective
// traffic. Flow starts and completions are discrete events on the sim
// engine; between events every flow progresses at its computed fair rate.
//
// This model is what lets the simulated clusters reproduce the paper's
// headline contrast: spread mappings enjoy many NICs when one communicator
// runs alone but collapse when 32 communicators share those NICs, while
// packed mappings never share and keep constant performance (§4.1.3).
package netmodel

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Link is a shared resource with a fixed capacity in bytes/second.
// A capacity of 0 means unlimited (the link never constrains flows).
type Link struct {
	Name     string
	Capacity float64

	// Water-filling scratch state, valid only during a rate computation.
	remCap  float64
	nActive int
	fixed   bool
	listed  bool

	flows []*Flow // active flows, compacted lazily
	live  int     // number of non-completed flows in the slice
}

// NewLink returns a link with the given capacity (0 = unlimited).
func NewLink(name string, capacity float64) *Link {
	return &Link{Name: name, Capacity: capacity}
}

func (l *Link) String() string { return fmt.Sprintf("%s(%.3g B/s)", l.Name, l.Capacity) }

// NFlows returns the number of flows currently crossing the link
// (diagnostic; meaningful only between events).
func (l *Link) NFlows() int { return l.live }

// compact removes completed flows from the link's slice when they dominate.
func (l *Link) compact() {
	if l.live*2 >= len(l.flows) {
		return
	}
	kept := l.flows[:0]
	for _, fl := range l.flows {
		if !fl.completed {
			kept = append(kept, fl)
		}
	}
	l.flows = kept
}

// Flow is one in-flight transfer over a path of links.
type Flow struct {
	links     []*Link
	remaining float64
	rate      float64
	done      *sim.Condition
	idx       int  // position in Fluid.flows
	rateFixed bool // water-filling scratch
	completed bool
}

// Done returns the condition fired when the flow completes.
func (f *Flow) Done() *sim.Condition { return f.done }

// Fluid is the set of active flows over a shared engine, with max-min fair
// rate allocation recomputed whenever the flow set changes.
type Fluid struct {
	engine     *sim.Engine
	flows      []*Flow
	lastSettle float64
	gen        uint64 // invalidates stale completion events
	dirty      bool   // a recompute event is pending

	lastRecompute   float64
	deferredPending bool

	scratchLinks []*Link
	scratchDone  []*Flow

	// NoContention disables bandwidth sharing: every flow runs at the full
	// capacity of its narrowest link regardless of other traffic. This is
	// the ablation of DESIGN.md §5 — it collapses the paper's one-vs-many
	// communicator gap and demonstrates why the substrate models sharing.
	NoContention bool

	// Recomputes counts rate recomputations (diagnostic).
	Recomputes int
}

// NewFluid returns an empty fluid simulation on the engine.
func NewFluid(engine *sim.Engine) *Fluid {
	// lastRecompute starts at -∞ so the first recompute is never deferred.
	return &Fluid{engine: engine, lastRecompute: math.Inf(-1)}
}

// completionEps is the residual byte count below which a flow counts as
// finished, absorbing float noise from incremental settling.
const completionEps = 1e-2

// completionSlack merges completion waves: a flow within this many seconds
// of finishing at its current rate completes together with the flow that
// triggered the event. 100 ns is far below every modelled latency, so the
// error is negligible while the number of rate recomputations drops by
// orders of magnitude for near-symmetric traffic.
const completionSlack = 100e-9

// recomputeQuantum rate-limits fair-share recomputation: after a
// recompute, further flow arrivals and departures only trigger the next
// one after this much virtual time (they still settle progress and retire
// finished flows immediately). Freed capacity therefore sits idle for at
// most a quarter microsecond — below every inter-domain latency — while
// pipeline-skewed collective traffic stops triggering hundreds of
// recomputations per communication round.
const recomputeQuantum = 250e-9

// StartTransfer schedules a transfer of the given bytes over the path,
// beginning after the given latency, and returns the completion condition.
// Call from process context or before Run. Zero-byte transfers complete
// after the latency alone.
func (f *Fluid) StartTransfer(path []*Link, bytes, latency float64) *sim.Condition {
	if bytes < 0 || latency < 0 {
		panic("netmodel: negative transfer")
	}
	done := f.engine.NewCondition()
	f.engine.At(f.engine.Now()+latency, func() {
		f.addFlowLocked(path, bytes, done)
	})
	return done
}

// Transfer performs a blocking transfer from the calling process.
func (f *Fluid) Transfer(p *sim.Process, path []*Link, bytes, latency float64) {
	f.StartTransfer(path, bytes, latency).Await(p)
}

// addFlowLocked runs inside an event callback (engine lock held).
func (f *Fluid) addFlowLocked(path []*Link, bytes float64, done *sim.Condition) {
	if bytes <= completionEps {
		done.FireLocked()
		return
	}
	constrained := false
	for _, l := range path {
		if l.Capacity > 0 {
			constrained = true
			break
		}
	}
	if !constrained {
		// No finite link on the path: the transfer is latency-only.
		done.FireLocked()
		return
	}
	fl := &Flow{links: path, remaining: bytes, done: done, idx: len(f.flows)}
	f.flows = append(f.flows, fl)
	for _, l := range path {
		l.flows = append(l.flows, fl)
		l.live++
	}
	f.markDirtyLocked()
}

// markDirtyLocked coalesces rate recomputation: many flow arrivals or
// departures at one instant trigger a single recompute request.
func (f *Fluid) markDirtyLocked() {
	if f.dirty {
		return
	}
	f.dirty = true
	f.engine.AtLocked(f.engine.NowLocked(), func() {
		f.dirty = false
		f.settleLocked()
		f.completeFinishedLocked()
		f.requestRecomputeLocked()
	})
}

// requestRecomputeLocked recomputes immediately when the quantum since the
// last recompute has passed, and otherwise defers one recompute to the end
// of the quantum.
func (f *Fluid) requestRecomputeLocked() {
	now := f.engine.NowLocked()
	if now >= f.lastRecompute+recomputeQuantum {
		f.recomputeLocked()
		return
	}
	if f.deferredPending {
		return
	}
	f.deferredPending = true
	f.engine.AtLocked(f.lastRecompute+recomputeQuantum, func() {
		f.deferredPending = false
		f.settleLocked()
		f.completeFinishedLocked()
		f.recomputeLocked()
	})
}

// settleLocked charges every flow for progress since the last settlement.
func (f *Fluid) settleLocked() {
	now := f.engine.NowLocked()
	dt := now - f.lastSettle
	f.lastSettle = now
	if dt <= 0 {
		return
	}
	for _, fl := range f.flows {
		fl.remaining -= fl.rate * dt
		if fl.remaining < 0 {
			fl.remaining = 0
		}
	}
}

// retire removes a flow from the active set; condition firing is the
// caller's job so retirement can batch before callbacks run.
func (f *Fluid) retire(fl *Flow) {
	fl.completed = true
	last := len(f.flows) - 1
	f.flows[fl.idx] = f.flows[last]
	f.flows[fl.idx].idx = fl.idx
	f.flows = f.flows[:last]
	for _, l := range fl.links {
		l.live--
		l.compact()
	}
}

// completeFinishedLocked retires every flow whose bytes are done (or will
// be within the completion slack) and fires its condition.
func (f *Fluid) completeFinishedLocked() {
	done := f.scratchDone[:0]
	for i := 0; i < len(f.flows); {
		fl := f.flows[i]
		if fl.remaining <= completionEps || fl.remaining <= fl.rate*completionSlack {
			f.retire(fl) // swaps another flow into position i
			done = append(done, fl)
			continue
		}
		i++
	}
	f.scratchDone = done[:0]
	for _, fl := range done {
		fl.done.FireLocked()
	}
}

// recomputeLocked assigns max-min fair rates to all active flows
// (progressive filling) and schedules the next completion event.
func (f *Fluid) recomputeLocked() {
	f.Recomputes++
	f.lastRecompute = f.engine.NowLocked()
	if len(f.flows) == 0 {
		f.gen++
		return
	}
	if f.NoContention {
		f.recomputeNoContentionLocked()
		return
	}
	// Collect the finite links touched by active flows and reset scratch.
	links := f.scratchLinks[:0]
	for _, fl := range f.flows {
		fl.rateFixed = false
		fl.rate = 0
		for _, l := range fl.links {
			if l.Capacity <= 0 {
				continue // unlimited
			}
			if !l.listed {
				l.remCap = l.Capacity
				l.fixed = false
				l.listed = true
				l.nActive = 0
				links = append(links, l)
			}
			l.nActive++
		}
	}
	unfixedFlows := len(f.flows)
	var bottlenecks []*Link
	for unfixedFlows > 0 {
		// Find the bottleneck links: minimal fair share. All links tied at
		// the minimum are bottlenecks simultaneously and are fixed in one
		// pass — symmetric traffic then needs a single iteration.
		best := math.Inf(1)
		bottlenecks = bottlenecks[:0]
		for _, l := range links {
			if l.fixed || l.nActive == 0 {
				continue
			}
			share := l.remCap / float64(l.nActive)
			switch {
			case share < best*(1-1e-9):
				best = share
				bottlenecks = append(bottlenecks[:0], l)
			case share <= best*(1+1e-9):
				bottlenecks = append(bottlenecks, l)
			}
		}
		if len(bottlenecks) == 0 {
			// Remaining flows see only unlimited residual capacity (every
			// finite link on their path was fixed with spare room):
			// finish them instantly.
			for _, fl := range f.flows {
				if !fl.rateFixed {
					fl.rateFixed = true
					fl.remaining = 0
					fl.rate = math.MaxFloat64 / 4 // forces completion at once
					unfixedFlows--
				}
			}
			break
		}
		if best < 0 {
			best = 0
		}
		// Fix every unfixed flow crossing a bottleneck at the fair share.
		for _, bottleneck := range bottlenecks {
			for _, fl := range bottleneck.flows {
				if fl.rateFixed || fl.completed {
					continue
				}
				fl.rate = best
				fl.rateFixed = true
				unfixedFlows--
				for _, l := range fl.links {
					if l.Capacity <= 0 {
						continue
					}
					l.remCap -= best
					if l.remCap < 0 {
						l.remCap = 0
					}
					l.nActive--
				}
			}
			bottleneck.fixed = true
		}
	}
	// Reset link scratch flags for the next recompute.
	for _, l := range links {
		l.nActive = 0
		l.listed = false
	}
	f.scratchLinks = links[:0]
	f.scheduleNextLocked()
}

// recomputeNoContentionLocked gives every flow its narrowest link's full
// capacity (the no-sharing ablation).
func (f *Fluid) recomputeNoContentionLocked() {
	for _, fl := range f.flows {
		rate := math.Inf(1)
		for _, l := range fl.links {
			if l.Capacity > 0 && l.Capacity < rate {
				rate = l.Capacity
			}
		}
		fl.rate = rate
	}
	f.scheduleNextLocked()
}

// scheduleNextLocked arms the completion event for the earliest-finishing
// flow under the current rates.
func (f *Fluid) scheduleNextLocked() {
	next := math.Inf(1)
	for _, fl := range f.flows {
		if fl.rate <= 0 {
			continue
		}
		t := fl.remaining / fl.rate
		if t < next {
			next = t
		}
	}
	f.gen++
	if math.IsInf(next, 1) {
		return // all rates zero: flows stall until the set changes
	}
	gen := f.gen
	now := f.engine.NowLocked()
	f.engine.AtLocked(now+next, func() {
		if gen != f.gen {
			return // superseded by a later recompute
		}
		f.settleLocked()
		f.completeFinishedLocked()
		f.requestRecomputeLocked()
	})
}

// ActiveFlows returns the number of in-flight flows (diagnostic).
func (f *Fluid) ActiveFlows() int { return len(f.flows) }

// RebalanceLocked requests a fair-share recomputation after link capacities
// changed out-of-band (fault injection degrading a level). In-flight flows
// are settled at their old rates up to the current instant first, so the
// degradation takes effect exactly now. Must be called from an event
// callback (engine lock held).
func (f *Fluid) RebalanceLocked() { f.markDirtyLocked() }
