// Platform construction: turning a hierarchy plus per-level link
// characteristics into the link graph the fluid model runs on.

package netmodel

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// LevelSpec describes the communication resources of one hierarchy level.
// A Spec has one LevelSpec per hierarchy level, outermost first; the last
// level describes the cores themselves (only Latency and MemBandwidth are
// meaningful there).
type LevelSpec struct {
	Name  string
	Arity int

	// UpBandwidth is the egress (and, separately, ingress) bandwidth in
	// bytes/s of the link connecting one domain of this level to its parent
	// — for the node level this is the NIC. 0 means unlimited.
	UpBandwidth float64

	// BusBandwidth is the internal interconnect bandwidth of one domain of
	// this level, shared by flows whose lowest common ancestor is that
	// domain and by the source/destination memory traffic of flows entering
	// or leaving it at the innermost level. 0 means unlimited.
	BusBandwidth float64

	// Latency is the one-way latency in seconds of a message whose
	// outermost crossing is this level (for the innermost level: latency
	// between two cores of the same lowest domain).
	Latency float64

	// MemBandwidth is the memory bandwidth in bytes/s of one domain of this
	// level, shared by the compute-memory traffic of the ranks it hosts.
	// 0 means this level does not constrain compute.
	MemBandwidth float64
}

// Spec is the full machine description.
type Spec struct {
	Name   string
	Levels []LevelSpec

	// FabricBandwidth bounds the aggregate inter-node traffic (the core
	// switch). 0 means unlimited (full-bisection network).
	FabricBandwidth float64

	// NICsPerNode multiplies the node-level UpBandwidth (Figure 8 contrasts
	// 1 and 2 NICs per node). 0 is treated as 1.
	NICsPerNode int

	// CoreFlops is the peak floating-point rate of one core in flop/s, used
	// by the roofline compute model. 0 means compute time is memory-only.
	CoreFlops float64

	// NoContention disables bandwidth sharing (ablation): every flow gets
	// its narrowest link's full capacity.
	NoContention bool
}

// Hierarchy returns the topology implied by the level arities.
func (s Spec) Hierarchy() topology.Hierarchy {
	levels := make([]topology.Level, len(s.Levels))
	for i, l := range s.Levels {
		name := l.Name
		if name == "" {
			name = fmt.Sprintf("level%d", i)
		}
		levels[i] = topology.Level{Name: name, Arity: l.Arity}
	}
	h, err := topology.NewNamed(levels...)
	if err != nil {
		panic(err)
	}
	return h
}

// Platform is an instantiated machine: the link graph for a Spec plus the
// fluid simulation that animates it.
type Platform struct {
	spec  Spec
	hier  topology.Hierarchy
	fluid *Fluid

	// out[l][d], in[l][d]: egress/ingress uplink of domain d at level l
	// (levels 0 … depth-2). nil when the level's UpBandwidth is unlimited.
	out [][]*Link
	in  [][]*Link
	// bus[l][d]: internal bus of domain d at level l. nil when unlimited.
	bus [][]*Link
	// mem[l][d]: memory resource of domain d at level l; nil when the level
	// has no MemBandwidth.
	mem [][]*Link

	fabric *Link

	// suffix[l] = number of cores per domain at level l.
	suffix []int
}

// NewPlatform builds the link graph for the spec on the engine.
func NewPlatform(engine *sim.Engine, spec Spec) *Platform {
	hier := spec.Hierarchy()
	k := hier.Depth()
	p := &Platform{
		spec:  spec,
		hier:  hier,
		fluid: NewFluid(engine),
		out:   make([][]*Link, k),
		in:    make([][]*Link, k),
		bus:   make([][]*Link, k),
		mem:   make([][]*Link, k),
	}
	p.fluid.NoContention = spec.NoContention
	p.suffix = make([]int, k+1)
	p.suffix[k] = 1
	ar := hier.Arities()
	for l := k - 1; l >= 0; l-- {
		p.suffix[l] = p.suffix[l+1] * ar[l]
	}
	nics := spec.NICsPerNode
	if nics <= 0 {
		nics = 1
	}
	total := hier.Size()
	for l := 0; l < k; l++ {
		domains := total / p.suffix[l+1]
		ls := spec.Levels[l]
		up := ls.UpBandwidth
		if l == 0 {
			up *= float64(nics)
		}
		if up > 0 && l < k-1 {
			p.out[l] = make([]*Link, domains)
			p.in[l] = make([]*Link, domains)
			for d := 0; d < domains; d++ {
				p.out[l][d] = NewLink(fmt.Sprintf("%s%d.out", ls.Name, d), up)
				p.in[l][d] = NewLink(fmt.Sprintf("%s%d.in", ls.Name, d), up)
			}
		}
		if ls.BusBandwidth > 0 && l < k-1 {
			p.bus[l] = make([]*Link, domains)
			for d := 0; d < domains; d++ {
				p.bus[l][d] = NewLink(fmt.Sprintf("%s%d.bus", ls.Name, d), ls.BusBandwidth)
			}
		}
		if ls.MemBandwidth > 0 {
			p.mem[l] = make([]*Link, domains)
			for d := 0; d < domains; d++ {
				p.mem[l][d] = NewLink(fmt.Sprintf("%s%d.mem", ls.Name, d), ls.MemBandwidth)
			}
		}
	}
	if spec.FabricBandwidth > 0 {
		p.fabric = NewLink("fabric", spec.FabricBandwidth)
	}
	return p
}

// Spec returns the machine description.
func (p *Platform) Spec() Spec { return p.spec }

// Hierarchy returns the machine topology.
func (p *Platform) Hierarchy() topology.Hierarchy { return p.hier }

// Fluid returns the underlying fluid simulation (diagnostics).
func (p *Platform) Fluid() *Fluid { return p.fluid }

// NumCores returns the number of cores of the machine.
func (p *Platform) NumCores() int { return p.hier.Size() }

// domain returns the index of the level-l domain containing the core
// (a domain at level l spans suffix[l+1] cores).
func (p *Platform) domain(core, l int) int { return core / p.suffix[l+1] }

// innermostDomainLevel is the level of the lowest non-core domains.
func (p *Platform) innermostDomainLevel() int { return p.hier.Depth() - 2 }

// CommPath returns the links a message from core a to core b traverses and
// its latency. Same-core transfers have an empty path (pure latency).
func (p *Platform) CommPath(a, b int) ([]*Link, float64) {
	k := p.hier.Depth()
	d := p.hier.FirstDiffLevel(a, b)
	if d == k {
		return nil, p.spec.Levels[k-1].Latency
	}
	lat := p.spec.Levels[d].Latency
	inner := p.innermostDomainLevel()
	path := make([]*Link, 0, 2*(k-d)+3)
	// Source memory: the bus of a's innermost domain.
	if inner >= 0 && p.bus[inner] != nil {
		path = append(path, p.bus[inner][p.domain(a, inner)])
	}
	if d <= inner {
		// Climb out of a's domains.
		for l := inner; l >= d; l-- {
			if p.out[l] != nil {
				path = append(path, p.out[l][p.domain(a, l)])
			}
		}
		// Shared interconnect at the meeting point.
		if d == 0 {
			if p.fabric != nil {
				path = append(path, p.fabric)
			}
		} else if p.bus[d-1] != nil {
			path = append(path, p.bus[d-1][p.domain(a, d-1)])
		}
		// Descend into b's domains.
		for l := d; l <= inner; l++ {
			if p.in[l] != nil {
				path = append(path, p.in[l][p.domain(b, l)])
			}
		}
	}
	// Destination memory.
	if inner >= 0 && p.bus[inner] != nil {
		dst := p.bus[inner][p.domain(b, inner)]
		if len(path) == 0 || path[0] != dst {
			path = append(path, dst)
		}
	}
	return path, lat
}

// StartTransfer begins an a→b message of the given size and returns its
// completion condition. Call from process context.
func (p *Platform) StartTransfer(a, b int, bytes float64) *sim.Condition {
	path, lat := p.CommPath(a, b)
	return p.fluid.StartTransfer(path, bytes, lat)
}

// StartTransferExtra is StartTransfer with additional fixed latency, used
// by the MPI layer to charge rendezvous handshakes (the path latency is
// multiplied by 1+extraRTT round trips).
func (p *Platform) StartTransferExtra(a, b int, bytes float64, extraRTT int) *sim.Condition {
	return p.StartTransferStretched(a, b, bytes, extraRTT, 1)
}

// StartTransferStretched is StartTransferExtra with the path latency
// additionally multiplied by stretch (>= 1). Fault injection uses it to
// model a straggling endpoint: the wire stays at full bandwidth, but every
// message touching the straggler pays its slowdown in latency.
func (p *Platform) StartTransferStretched(a, b int, bytes float64, extraRTT int, stretch float64) *sim.Condition {
	path, lat := p.CommPath(a, b)
	if stretch < 1 {
		stretch = 1
	}
	return p.fluid.StartTransfer(path, bytes, lat*float64(1+2*extraRTT)*stretch)
}

// DegradeLevel multiplies the capacity of every finite link at the given
// hierarchy level — uplinks, buses, memory, and (for level 0) the fabric —
// by factor in (0, 1], then rebalances in-flight flows so the degradation
// takes effect at the current virtual instant. Must be called from an
// event callback (engine lock held).
func (p *Platform) DegradeLevel(level int, factor float64) {
	if level < 0 || level >= p.hier.Depth() || factor <= 0 || factor > 1 {
		return
	}
	scale := func(links []*Link) {
		for _, l := range links {
			if l != nil && l.Capacity > 0 {
				l.Capacity *= factor
			}
		}
	}
	scale(p.out[level])
	scale(p.in[level])
	scale(p.bus[level])
	scale(p.mem[level])
	if level == 0 && p.fabric != nil {
		p.fabric.Capacity *= factor
	}
	p.fluid.RebalanceLocked()
}

// Transfer performs a blocking a→b message from the calling process.
func (p *Platform) Transfer(proc *sim.Process, a, b int, bytes float64) {
	p.StartTransfer(a, b, bytes).Await(proc)
}

// MemPath returns the memory resources charged by compute on the core.
func (p *Platform) MemPath(core int) []*Link {
	var path []*Link
	for l := 0; l < p.hier.Depth(); l++ {
		if p.mem[l] != nil {
			path = append(path, p.mem[l][p.domain(core, l)])
		}
	}
	return path
}

// Compute models a roofline kernel on the core: it completes when both the
// flop work (flops / CoreFlops seconds of CPU) and the memory traffic
// (bytes through the core's shared memory domains) are done. The memory
// traffic contends max-min fairly with the compute traffic of other ranks
// in the same domains.
func (p *Platform) Compute(proc *sim.Process, core int, flops, bytes float64) {
	start := proc.Now()
	if bytes > 0 {
		path := p.MemPath(core)
		p.fluid.Transfer(proc, path, bytes, 0)
	}
	if p.spec.CoreFlops > 0 && flops > 0 {
		need := flops / p.spec.CoreFlops
		elapsed := proc.Now() - start
		if elapsed < need {
			proc.Wait(need - elapsed)
		}
	}
}
