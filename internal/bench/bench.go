// Package bench drives the paper's micro-benchmark protocol (§4.1) on the
// simulated clusters:
//
//  1. reorder the world ranks with an order σ (realized, as in the paper's
//     first method, by splitting with the reordered rank as key),
//  2. create subcommunicators of a fixed size (quotient colouring),
//  3. measure the collective in the first subcommunicator alone,
//  4. measure it in all subcommunicators simultaneously,
//
// sweeping the total data size and reporting, per order and size, the mean
// bandwidth over communicators plus the first/last deciles across
// communicators — the quantities plotted in Figures 3–7.
package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/mixedradix"
	"repro/internal/mpi"
	"repro/internal/netmodel"
	"repro/internal/obs"
	"repro/internal/topology"
)

// Collective selects the benchmarked operation.
type Collective string

// Benchmarkable collectives (the paper's non-rooted set).
const (
	Alltoall  Collective = "alltoall"
	Allgather Collective = "allgather"
	Allreduce Collective = "allreduce"
)

// Config describes one figure's sweep.
type Config struct {
	Spec      netmodel.Spec
	Hierarchy topology.Hierarchy // must enumerate exactly the machine's cores
	CommSize  int
	Coll      Collective
	Orders    [][]int
	Sizes     []int64 // total data size S = commSize × per-rank count
	Iters     int     // timed iterations per measurement (default 3)
	MPI       mpi.Config
}

// Point is one measured size on one curve.
type Point struct {
	Size int64 // total data size S in bytes

	// Bandwidth is the mean over communicators of S / avg-iteration-time,
	// in bytes/s. P10 and P90 bound the decile band across communicators
	// (equal to Bandwidth when only one communicator runs).
	Bandwidth float64
	P10       float64
	P90       float64
}

// Series is one order's two curves.
type Series struct {
	Order    []int
	Char     metrics.Characterization
	OneComm  []Point
	AllComms []Point
}

// Run executes the full sweep.
func Run(cfg Config) ([]Series, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	if len(cfg.Orders) == 0 || len(cfg.Sizes) == 0 {
		return nil, fmt.Errorf("bench: empty sweep")
	}
	out := make([]Series, 0, len(cfg.Orders))
	for _, sigma := range cfg.Orders {
		ch, err := metrics.Characterize(cfg.Hierarchy, sigma, cfg.CommSize)
		if err != nil {
			return nil, err
		}
		s := Series{Order: append([]int(nil), sigma...), Char: ch}
		for _, size := range cfg.Sizes {
			one, err := Measure(cfg, sigma, size, false)
			if err != nil {
				return nil, err
			}
			all, err := Measure(cfg, sigma, size, true)
			if err != nil {
				return nil, err
			}
			s.OneComm = append(s.OneComm, one)
			s.AllComms = append(s.AllComms, all)
		}
		out = append(out, s)
	}
	return out, nil
}

func validate(cfg *Config) error {
	n := cfg.Hierarchy.Size()
	if cfg.Spec.Hierarchy().Size() != n {
		return fmt.Errorf("bench: hierarchy %s does not match machine with %d cores",
			cfg.Hierarchy, cfg.Spec.Hierarchy().Size())
	}
	if cfg.CommSize <= 0 || n%cfg.CommSize != 0 {
		return fmt.Errorf("bench: communicator size %d does not divide %d processes", cfg.CommSize, n)
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 3
	}
	switch cfg.Coll {
	case Alltoall, Allgather, Allreduce:
	default:
		return fmt.Errorf("bench: unknown collective %q", cfg.Coll)
	}
	return nil
}

// Measure runs one (order, size, scenario) measurement and returns its
// point. When simultaneous is false only the first subcommunicator runs
// the collective (the left plots of the figures).
func Measure(cfg Config, sigma []int, size int64, simultaneous bool) (Point, error) {
	if err := validate(&cfg); err != nil {
		return Point{}, err
	}
	n := cfg.Hierarchy.Size()
	p := cfg.CommSize
	nComms := n / p
	reorderStart := time.Now()
	ro, err := mixedradix.NewReorderer(cfg.Hierarchy.Arities(), sigma)
	if err != nil {
		return Point{}, err
	}
	table := ro.Table() // old rank -> reordered rank
	// The reorder phase runs before the simulation starts, so it has no
	// extent in virtual time; record its wall cost as a gauge instead.
	cfg.MPI.Obs.Registry().Gauge("bench_reorder_wall_seconds").SetMax(time.Since(reorderStart).Seconds())
	perRank := size / int64(p)
	if perRank <= 0 {
		return Point{}, fmt.Errorf("bench: size %d too small for %d ranks", size, p)
	}

	var mu sync.Mutex
	durations := make([]float64, 0, nComms)

	binding := make([]int, n)
	for i := range binding {
		binding[i] = i
	}
	sc := cfg.MPI.Obs
	_, err = mpi.Run(cfg.Spec, binding, cfg.MPI, func(r *mpi.Rank) {
		world := r.World()
		newRank := table[r.ID()]
		color := newRank / p
		key := newRank % p
		comm := world.Split(r, color, key)
		world.Barrier(r)
		// The rank that is rank 0 of the first subcommunicator narrates the
		// driver phases (it participates in every scenario).
		phases := color == 0 && comm.Rank() == 0
		splitDone := r.Now()
		if phases {
			sc.Phase("bench.split", 0, splitDone, obs.Arg{Key: "size", Val: size})
		}
		if !simultaneous && color != 0 {
			return
		}
		// Warmup iteration, then synchronized timed window.
		runCollective(r, comm, cfg.Coll, perRank)
		comm.Barrier(r)
		start := r.Now()
		if phases {
			sc.Phase("bench.warmup", splitDone, start)
		}
		for i := 0; i < cfg.Iters; i++ {
			runCollective(r, comm, cfg.Coll, perRank)
		}
		elapsed := r.Now() - start
		if phases {
			sc.Phase("bench.timed", start, r.Now(), obs.Arg{Key: "iters", Val: int64(cfg.Iters)})
		}
		if comm.Rank() == 0 {
			mu.Lock()
			durations = append(durations, elapsed/float64(cfg.Iters))
			mu.Unlock()
		}
	})
	if err != nil {
		return Point{}, err
	}
	if len(durations) == 0 {
		return Point{}, fmt.Errorf("bench: no communicator reported a duration (size %d)", size)
	}
	bws := make([]float64, len(durations))
	for i, d := range durations {
		bws[i] = float64(size) / d
	}
	sort.Float64s(bws)
	var mean float64
	for _, b := range bws {
		mean += b
	}
	mean /= float64(len(bws))
	return Point{
		Size:      size,
		Bandwidth: mean,
		P10:       bws[len(bws)/10],
		P90:       bws[len(bws)-1-len(bws)/10],
	}, nil
}

// runCollective issues one synthetic collective with a per-rank
// contribution of perRank bytes.
func runCollective(r *mpi.Rank, comm *mpi.Comm, coll Collective, perRank int64) {
	switch coll {
	case Alltoall:
		block := perRank / int64(comm.Size())
		if block <= 0 {
			block = 1
		}
		comm.AlltoallBytes(r, block)
	case Allgather:
		comm.AllgatherBytes(r, perRank)
	case Allreduce:
		comm.AllreduceBytes(r, perRank)
	default:
		panic("bench: unknown collective")
	}
}

// Sizes16KBto512MB returns the paper's x-axis: powers of four from 16 KB
// to 512 MB (16K, 64K, …, 256M) plus the 512 MB endpoint.
func Sizes16KBto512MB() []int64 {
	var out []int64
	for s := int64(16 << 10); s <= 256<<20; s *= 4 {
		out = append(out, s)
	}
	return append(out, 512<<20)
}

// FormatMBps renders a bandwidth in MB/s for tables.
func FormatMBps(bps float64) string {
	return fmt.Sprintf("%.0f", bps/1e6)
}
