package bench

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/topology"
)

// smallHydra is a 4-node Hydra (128 cores) keeping test runtimes short.
func smallHydra() (Config, topology.Hierarchy) {
	h := cluster.HydraHierarchy(4)
	return Config{
		Spec:      cluster.Hydra(4, 1),
		Hierarchy: h,
		CommSize:  16,
		Coll:      Alltoall,
		Iters:     2,
	}, h
}

func TestValidate(t *testing.T) {
	cfg, _ := smallHydra()
	cfg.Orders = [][]int{{0, 1, 2, 3}}
	cfg.Sizes = []int64{1 << 20}
	cfg.CommSize = 7
	if _, err := Run(cfg); err == nil {
		t.Error("non-dividing comm size accepted")
	}
	cfg.CommSize = 16
	cfg.Coll = "transmogrify"
	if _, err := Run(cfg); err == nil {
		t.Error("unknown collective accepted")
	}
	cfg.Coll = Alltoall
	cfg.Orders = nil
	if _, err := Run(cfg); err == nil {
		t.Error("empty sweep accepted")
	}
}

func TestMeasureSingleVsSimultaneous(t *testing.T) {
	// The paper's Figure 3 setup: 16 Hydra nodes, 512 ranks, communicators
	// of 16. The spread order puts one rank of the first communicator on
	// each node (16 NICs available); the packed order fills one socket.
	cfg := Config{
		Spec:      cluster.Hydra(16, 1),
		Hierarchy: cluster.HydraHierarchy(16),
		CommSize:  16,
		Coll:      Alltoall,
		Iters:     2,
	}
	spread := []int{0, 1, 2, 3}
	packed := []int{3, 2, 1, 0}
	size := int64(8 << 20)

	spreadOne, err := Measure(cfg, spread, size, false)
	if err != nil {
		t.Fatal(err)
	}
	spreadAll, err := Measure(cfg, spread, size, true)
	if err != nil {
		t.Fatal(err)
	}
	packedOne, err := Measure(cfg, packed, size, false)
	if err != nil {
		t.Fatal(err)
	}
	packedAll, err := Measure(cfg, packed, size, true)
	if err != nil {
		t.Fatal(err)
	}

	// §4.1.3 shape 1: packed mappings have constant performance regardless
	// of the number of simultaneous communicators.
	ratio := packedAll.Bandwidth / packedOne.Bandwidth
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("packed bandwidth changed under contention: one=%.3g all=%.3g",
			packedOne.Bandwidth, packedAll.Bandwidth)
	}
	// §4.1.3 shape 2: the spread mapping wins when alone…
	if spreadOne.Bandwidth <= packedOne.Bandwidth {
		t.Errorf("spread one-comm (%.3g) should beat packed one-comm (%.3g)",
			spreadOne.Bandwidth, packedOne.Bandwidth)
	}
	// …and collapses when all communicators share the NICs.
	if spreadAll.Bandwidth >= packedAll.Bandwidth {
		t.Errorf("spread all-comms (%.3g) should lose to packed all-comms (%.3g)",
			spreadAll.Bandwidth, packedAll.Bandwidth)
	}
	// The spread mapping's own collapse should be large (about the number
	// of communicators per node in the ideal fluid model).
	if spreadAll.Bandwidth*2 > spreadOne.Bandwidth {
		t.Errorf("spread mapping barely degraded: one=%.3g all=%.3g",
			spreadOne.Bandwidth, spreadAll.Bandwidth)
	}
}

func TestRunProducesSeries(t *testing.T) {
	cfg, _ := smallHydra()
	cfg.Orders = [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}}
	cfg.Sizes = []int64{256 << 10, 4 << 20}
	series, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.OneComm) != 2 || len(s.AllComms) != 2 {
			t.Fatalf("order %v: %d/%d points", s.Order, len(s.OneComm), len(s.AllComms))
		}
		for _, pt := range append(append([]Point{}, s.OneComm...), s.AllComms...) {
			if pt.Bandwidth <= 0 {
				t.Errorf("order %v size %d: bandwidth %v", s.Order, pt.Size, pt.Bandwidth)
			}
			// Tiny relative slack: with identical per-comm values the mean
			// can differ from the deciles by float rounding.
			if pt.P10 > pt.Bandwidth*(1+1e-12) || pt.P90 < pt.Bandwidth*(1-1e-12) {
				t.Errorf("order %v size %d: deciles %v %v around %v",
					s.Order, pt.Size, pt.P10, pt.P90, pt.Bandwidth)
			}
		}
		if s.Char.RingCost <= 0 {
			t.Errorf("order %v: missing characterization", s.Order)
		}
	}
}

func TestAllgatherAndAllreduceRun(t *testing.T) {
	cfg, _ := smallHydra()
	for _, coll := range []Collective{Allgather, Allreduce} {
		cfg.Coll = coll
		pt, err := Measure(cfg, []int{3, 2, 1, 0}, 1<<20, true)
		if err != nil {
			t.Fatalf("%s: %v", coll, err)
		}
		if pt.Bandwidth <= 0 {
			t.Errorf("%s: bandwidth %v", coll, pt.Bandwidth)
		}
	}
}

func TestSizes16KBto512MB(t *testing.T) {
	sizes := Sizes16KBto512MB()
	if sizes[0] != 16<<10 || sizes[len(sizes)-1] != 512<<20 {
		t.Errorf("sizes = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Error("sizes not increasing")
		}
	}
}

func TestFormatMBps(t *testing.T) {
	if got := FormatMBps(7.731e9); got != "7731" {
		t.Errorf("FormatMBps = %q", got)
	}
}
