package sim

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWaitAdvancesTime(t *testing.T) {
	e := NewEngine()
	var end float64
	e.Spawn("p", func(p *Process) {
		p.Wait(1.5)
		p.Wait(2.5)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 4.0 {
		t.Errorf("end time = %v, want 4.0", end)
	}
	if e.Now() != 4.0 {
		t.Errorf("engine time = %v, want 4.0", e.Now())
	}
}

func TestTwoProcessesInterleave(t *testing.T) {
	e := NewEngine()
	var trace []string
	record := func(s string) { trace = append(trace, s) }
	e.Spawn("a", func(p *Process) {
		p.Wait(1)
		record("a@1")
		p.Wait(2)
		record("a@3")
	})
	e.Spawn("b", func(p *Process) {
		p.Wait(2)
		record("b@2")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a@1", "b@2", "a@3"}
	if len(trace) != 3 {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Errorf("trace = %v, want %v", trace, want)
			break
		}
	}
}

func TestEventsFireInOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3, func() { order = append(order, 3) })
	e.At(1, func() { order = append(order, 1) })
	e.At(2, func() { order = append(order, 2) })
	e.At(1, func() { order = append(order, 11) }) // same time: FIFO by seq
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestConditionFireBeforeAwait(t *testing.T) {
	e := NewEngine()
	c := e.NewCondition()
	e.At(1, func() { c.FireLocked() })
	var at float64
	e.Spawn("p", func(p *Process) {
		p.Wait(5)
		c.Await(p) // already fired: returns immediately
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5 {
		t.Errorf("await returned at %v, want 5", at)
	}
	if !c.Fired() {
		t.Error("condition not fired")
	}
}

func TestConditionAwaitThenFire(t *testing.T) {
	e := NewEngine()
	c := e.NewCondition()
	e.At(7, func() { c.FireLocked() })
	var at float64
	e.Spawn("p", func(p *Process) {
		c.Await(p)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 7 {
		t.Errorf("await returned at %v, want 7", at)
	}
}

func TestAwaitAll(t *testing.T) {
	e := NewEngine()
	c1, c2, c3 := e.NewCondition(), e.NewCondition(), e.NewCondition()
	e.At(1, func() { c2.FireLocked() })
	e.At(4, func() { c1.FireLocked() })
	e.At(2, func() { c3.FireLocked() })
	var at float64
	e.Spawn("p", func(p *Process) {
		AwaitAll(p, c1, c2, c3)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 4 {
		t.Errorf("AwaitAll returned at %v, want 4", at)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine()
	c := e.NewCondition() // never fired
	e.Spawn("stuck", func(p *Process) {
		c.Await(p)
	})
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("Run = %v, want ErrDeadlock", err)
	}
}

func TestProcessPanicBecomesError(t *testing.T) {
	e := NewEngine()
	e.Spawn("boom", func(p *Process) {
		p.Wait(1)
		panic("kaboom")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("Run should report the panic")
	}
}

func TestWaitUntil(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Spawn("p", func(p *Process) {
		p.WaitUntil(3)
		times = append(times, p.Now())
		p.WaitUntil(1) // in the past: no-op
		times = append(times, p.Now())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if times[0] != 3 || times[1] != 3 {
		t.Errorf("times = %v, want [3 3]", times)
	}
}

func TestManyProcesses(t *testing.T) {
	e := NewEngine()
	const n = 500
	var total atomic.Int64
	for i := 0; i < n; i++ {
		d := float64(i%17) * 0.001
		e.Spawn("p", func(p *Process) {
			p.Wait(d)
			p.Wait(d)
			total.Add(1)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if total.Load() != n {
		t.Errorf("%d processes finished, want %d", total.Load(), n)
	}
	if want := 2 * 16 * 0.001; math.Abs(e.Now()-want) > 1e-12 {
		t.Errorf("final time %v, want %v", e.Now(), want)
	}
}

func TestNegativeWaitPanics(t *testing.T) {
	e := NewEngine()
	e.Spawn("p", func(p *Process) { p.Wait(-1) })
	if err := e.Run(); err == nil {
		t.Error("negative wait should fail the run")
	}
}

func TestRunTwiceFails(t *testing.T) {
	e := NewEngine()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil {
		t.Error("second Run should fail")
	}
}

func TestProcessName(t *testing.T) {
	e := NewEngine()
	e.Spawn("rank-7", func(p *Process) {
		if p.Name() != "rank-7" {
			t.Errorf("Name = %q", p.Name())
		}
		if p.Engine() != e {
			t.Error("Engine accessor mismatch")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Processes communicating through conditions must see a consistent clock:
// the firing process's time is the awaiting process's wake time.
func TestConditionHandshakeTime(t *testing.T) {
	e := NewEngine()
	c := e.NewCondition()
	var fireAt, wakeAt float64
	e.Spawn("firer", func(p *Process) {
		p.Wait(2.5)
		fireAt = p.Now()
		c.Fire()
	})
	e.Spawn("waiter", func(p *Process) {
		c.Await(p)
		wakeAt = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fireAt != 2.5 || wakeAt != 2.5 {
		t.Errorf("fireAt=%v wakeAt=%v, want both 2.5", fireAt, wakeAt)
	}
}

func BenchmarkWaitChain(b *testing.B) {
	e := NewEngine()
	e.Spawn("p", func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Wait(0.001)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestDeadlockReportNamesBlockedProcesses(t *testing.T) {
	e := NewEngine()
	c := e.NewCondition() // never fired
	e.Spawn("recv3", func(p *Process) {
		c.AwaitOp(p, "Recv", 3, 42)
	})
	e.Spawn("plain", func(p *Process) {
		c.Await(p)
	})
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
	msg := err.Error()
	for _, want := range []string{"2 blocked", "recv3", "Recv(peer=3, tag=42)", "plain"} {
		if !strings.Contains(msg, want) {
			t.Errorf("deadlock report missing %q: %s", want, msg)
		}
	}
}

func TestDeadlockReportCapsProcessList(t *testing.T) {
	e := NewEngine()
	c := e.NewCondition()
	for i := 0; i < 12; i++ {
		e.Spawn(fmt.Sprintf("p%d", i), func(p *Process) { c.Await(p) })
	}
	err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "12 blocked") || !strings.Contains(msg, "more") {
		t.Errorf("capped deadlock report should count all 12 and note the overflow: %s", msg)
	}
}

type countingObserver struct {
	advances, blocks, wakes int
	lastNow                 float64
	maxQueue                int
}

func (o *countingObserver) OnAdvance(now float64, fired, queueDepth int) {
	o.advances++
	o.lastNow = now
	if queueDepth > o.maxQueue {
		o.maxQueue = queueDepth
	}
}
func (o *countingObserver) OnBlock(proc string, now float64) { o.blocks++ }
func (o *countingObserver) OnWake(proc string, now float64, wallLatency float64) {
	o.wakes++
	if wallLatency < 0 {
		panic("negative wake latency")
	}
}

func TestObserverSeesAdvancesAndBlocks(t *testing.T) {
	e := NewEngine()
	obs := &countingObserver{}
	e.SetObserver(obs)
	c := e.NewCondition()
	e.Spawn("waiter", func(p *Process) {
		c.Await(p)
	})
	e.Spawn("firer", func(p *Process) {
		p.Wait(2)
		c.Fire()
		p.Wait(1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if obs.advances == 0 {
		t.Error("observer saw no event advances")
	}
	if obs.blocks == 0 || obs.wakes != obs.blocks {
		t.Errorf("observer saw %d blocks and %d wakes, want equal and > 0", obs.blocks, obs.wakes)
	}
	if obs.lastNow != 3 {
		t.Errorf("last observed time = %v, want 3", obs.lastNow)
	}
}

func TestNilObserverCostsNothing(t *testing.T) {
	// The disabled path must not allocate: block labels are static strings
	// and the observer hook is one nil check.
	e := NewEngine()
	c := e.NewCondition()
	e.Spawn("a", func(p *Process) { c.AwaitOp(p, "Recv", 1, 7) })
	e.Spawn("b", func(p *Process) { p.Wait(1); c.Fire() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
