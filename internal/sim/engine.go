// Package sim provides the discrete-event simulation engine underneath the
// simulated cluster: a virtual clock, a time-ordered event queue, and
// process goroutines that block on simulated operations and are resumed by
// the scheduler when their operation completes.
//
// The engine is conservative and deterministic in its results: events fire
// in (time, sequence) order, and although processes woken at the same
// virtual instant execute concurrently as goroutines, all simulation state
// is mutated under the engine lock and operation completion times are pure
// functions of the set of outstanding operations.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// ErrDeadlock is returned by Run when processes are blocked but no event is
// pending — e.g. a Recv whose matching Send never arrives.
var ErrDeadlock = errors.New("sim: deadlock — processes blocked with no pending event")

// Abort is the panic value a process body (or a library underneath it, such
// as the MPI runtime) throws to terminate the whole simulation with a typed
// error instead of a generic "process panicked" failure: Run wraps Err with
// %w, so callers can errors.Is/As against it. Recover-and-inspect
// wrappers (fault.Catch) may intercept an Abort before it reaches the
// engine and let the process continue.
type Abort struct{ Err error }

// killedPanic terminates the goroutine of a process killed by fault
// injection. It is never visible to user code: Spawn's recover treats it
// as a clean process exit.
type killedPanic struct{}

type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}
func (h eventHeap) peek() *event { return h[0] }

// Observer receives engine lifecycle callbacks for observability. Every
// method is invoked with the engine lock held: implementations must be
// fast, must not block, and must not call back into the engine. All hooks
// are nil-checked so a nil observer costs one predictable branch.
type Observer interface {
	// OnAdvance is called after every batch of events fired at one virtual
	// instant: the new virtual time, how many events fired at it, and the
	// queue depth remaining afterwards.
	OnAdvance(now float64, fired, queueDepth int)
	// OnBlock is called when a process parks (Wait, WaitUntil, Await).
	OnBlock(proc string, now float64)
	// OnWake is called when a parked process resumes. wallLatency is the
	// wall-clock delay between the waking event and the goroutine actually
	// resuming (0 when unknown, e.g. the initial release at time 0).
	OnWake(proc string, now float64, wallLatency float64)
}

// Engine is a discrete-event simulation. Create with NewEngine, add
// processes with Spawn, then call Run.
type Engine struct {
	mu      sync.Mutex
	cond    *sync.Cond // signalled when running drops to zero
	now     float64
	seq     uint64
	events  eventHeap
	running int // process goroutines currently executing user code
	procs   []*Process
	stopped bool
	failure error
	obs     Observer

	// deadlockNote is extra context (e.g. which ranks were lost to fault
	// injection) appended to a deadlock report.
	deadlockNote string
}

// SetDeadlockNoteLocked records a note appended to any subsequent deadlock
// report, so that e.g. a hang after fault injection names the lost ranks.
// Must be called with the engine lock held (event-callback context).
func (e *Engine) SetDeadlockNoteLocked(note string) { e.deadlockNote = note }

// SetObserver installs the engine observer. Call before Run; a nil
// observer (the default) disables all callbacks.
func (e *Engine) SetObserver(o Observer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.obs = o
}

// NewEngine returns an empty engine at virtual time 0.
func NewEngine() *Engine {
	e := &Engine{}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// Now returns the current virtual time in seconds. Safe to call from
// process goroutines and event callbacks.
func (e *Engine) Now() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// At schedules fn to run at virtual time t (clamped to now). fn runs with
// the engine lock held; it must not block and must not call At-locking
// methods — use at() conventions: schedule further events with atLocked.
// External callers use At before Run or from process context.
func (e *Engine) At(t float64, fn func()) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.atLocked(t, fn)
}

func (e *Engine) atLocked(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// AtLocked schedules fn at time t without acquiring the engine lock. It
// must only be called from an event callback (which already runs with the
// lock held); calling it from any other context is a data race.
func (e *Engine) AtLocked(t float64, fn func()) { e.atLocked(t, fn) }

// NowLocked returns the virtual time without locking; like AtLocked it is
// only for use inside event callbacks.
func (e *Engine) NowLocked() float64 { return e.now }

// Process is a simulated thread of execution. Its methods must only be
// called from the goroutine running the process body.
type Process struct {
	engine *Engine
	name   string
	wake   chan float64
	done   bool
	parked bool // true while blocked in block(); guards double-unblock
	killed bool // set by KillLocked; the process dies at its next wake

	// blocked-on description for deadlock diagnostics; written under the
	// engine lock by AwaitOp and cleared on wake.
	blockOp   string
	blockPeer int
	blockTag  int64
	wakeWall  time.Time // wall time of unblock, for wake-latency metrics
}

// blockDesc renders what the process is blocked on ("" when unknown).
func (p *Process) blockDesc() string {
	if p.blockOp == "" {
		return ""
	}
	if p.blockPeer < 0 {
		return p.blockOp
	}
	return fmt.Sprintf("%s(peer=%d, tag=%d)", p.blockOp, p.blockPeer, p.blockTag)
}

// Name returns the process name given to Spawn.
func (p *Process) Name() string { return p.name }

// Engine returns the engine the process runs on.
func (p *Process) Engine() *Engine { return p.engine }

// Now returns the current virtual time.
func (p *Process) Now() float64 { return p.engine.Now() }

// Spawn registers a process whose body starts executing at time 0 when Run
// is called. The body runs in its own goroutine; when it returns, the
// process is finished.
func (e *Engine) Spawn(name string, body func(p *Process)) *Process {
	e.mu.Lock()
	defer e.mu.Unlock()
	p := &Process{engine: e, name: name, wake: make(chan float64, 1)}
	e.procs = append(e.procs, p)
	e.running++
	go func() {
		<-p.wake // wait for Run to release the process
		defer func() {
			r := recover()
			e.mu.Lock()
			switch v := r.(type) {
			case nil:
				// normal return
			case killedPanic:
				// fault-injected crash: a clean exit, not a failure
			case Abort:
				if e.failure == nil {
					e.failure = fmt.Errorf("sim: process %q aborted: %w", name, v.Err)
				}
			default:
				if e.failure == nil {
					e.failure = fmt.Errorf("sim: process %q panicked: %v\n%s", name, r, debug.Stack())
				}
			}
			p.done = true
			e.running--
			e.cond.Signal()
			e.mu.Unlock()
		}()
		body(p)
	}()
	return p
}

// KillLocked marks the process as crashed. If it is parked on a simulated
// operation it is woken immediately and its goroutine terminates (via an
// internal panic that Spawn treats as a clean exit); otherwise it dies the
// next time it blocks. Must be called with the engine lock held — i.e.
// from an event callback, which only runs when no process is executing.
func (p *Process) KillLocked() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	if p.parked {
		p.unblock()
	}
}

// KilledLocked reports whether the process has been killed by fault
// injection. Must be called with the engine lock held.
func (p *Process) KilledLocked() bool { return p.killed }

// block parks the calling process until an event wakes it via unblock.
// The engine lock must be held on entry; it is released while parked and
// re-acquired before returning. Returns the wake time.
func (p *Process) block() float64 {
	e := p.engine
	if p.killed {
		panic(killedPanic{})
	}
	if e.obs != nil {
		e.obs.OnBlock(p.name, e.now)
	}
	p.parked = true
	e.running--
	e.cond.Signal()
	e.mu.Unlock()
	t := <-p.wake
	e.mu.Lock()
	if p.killed {
		panic(killedPanic{})
	}
	if e.obs != nil {
		var lat float64
		if !p.wakeWall.IsZero() {
			lat = time.Since(p.wakeWall).Seconds()
			p.wakeWall = time.Time{}
		}
		e.obs.OnWake(p.name, e.now, lat)
	}
	return t
}

// unblock marks the process runnable at the current virtual time. Must be
// called with the engine lock held (typically from an event callback).
// Idempotent: a process already woken (e.g. by KillLocked racing a
// condition failure) is not woken twice.
func (p *Process) unblock() {
	if !p.parked {
		return
	}
	p.parked = false
	e := p.engine
	if e.obs != nil {
		p.wakeWall = time.Now()
	}
	e.running++
	p.wake <- e.now
}

// Wait advances the process's local time by d seconds of pure delay.
func (p *Process) Wait(d float64) {
	if d < 0 {
		panic("sim: negative wait")
	}
	e := p.engine
	e.mu.Lock()
	defer e.mu.Unlock()
	e.atLocked(e.now+d, p.unblock)
	p.block()
}

// WaitUntil blocks the process until the given virtual time (no-op if in
// the past).
func (p *Process) WaitUntil(t float64) {
	e := p.engine
	e.mu.Lock()
	defer e.mu.Unlock()
	if t <= e.now {
		return
	}
	e.atLocked(t, p.unblock)
	p.block()
}

// Condition is a simulated one-shot condition: processes can block on it
// with Await, callbacks can be chained with OnFire, and it is fired exactly
// once by an event callback or another process. Fire may precede Await;
// Await then returns immediately. Multiple processes may Await the same
// condition.
type Condition struct {
	engine    *Engine
	fired     bool
	err       error // non-nil when the condition was failed, not fired
	waiters   []*Process
	callbacks []func()
}

// NewCondition returns a one-shot condition on the engine.
func (e *Engine) NewCondition() *Condition { return &Condition{engine: e} }

// FireLocked fires the condition; the engine lock must be held. Chained
// callbacks run immediately (still under the lock), then all waiting
// processes are released at the current virtual time.
func (c *Condition) FireLocked() {
	if c.fired {
		return
	}
	c.fired = true
	for _, fn := range c.callbacks {
		fn()
	}
	c.callbacks = nil
	for _, w := range c.waiters {
		w.unblock()
	}
	c.waiters = nil
}

// FailLocked fires the condition with an error: waiters wake as usual but
// Err reports err afterwards, letting the operation that was awaiting the
// condition surface a typed failure (e.g. a lost rank) instead of hanging.
// No-op if the condition already fired or failed.
func (c *Condition) FailLocked(err error) {
	if c.fired {
		return
	}
	c.err = err
	c.FireLocked()
}

// Err returns the error the condition was failed with, or nil if it fired
// normally (or has not fired yet). Safe from process context.
func (c *Condition) Err() error {
	c.engine.mu.Lock()
	defer c.engine.mu.Unlock()
	return c.err
}

// ErrLocked is Err for use with the engine lock already held.
func (c *Condition) ErrLocked() error { return c.err }

// OnFire registers fn to run (under the engine lock) when the condition
// fires; if it has already fired, fn runs immediately. Safe from process
// context.
func (c *Condition) OnFire(fn func()) {
	c.engine.mu.Lock()
	defer c.engine.mu.Unlock()
	c.OnFireLocked(fn)
}

// OnFireLocked is OnFire for use inside event callbacks (lock held).
func (c *Condition) OnFireLocked(fn func()) {
	if c.fired {
		fn()
		return
	}
	c.callbacks = append(c.callbacks, fn)
}

// Fire fires the condition, waking the awaiting process at the current
// virtual time.
func (c *Condition) Fire() {
	c.engine.mu.Lock()
	defer c.engine.mu.Unlock()
	c.FireLocked()
}

// Fired reports whether the condition has fired.
func (c *Condition) Fired() bool {
	c.engine.mu.Lock()
	defer c.engine.mu.Unlock()
	return c.fired
}

// Await blocks the process until the condition fires.
func (c *Condition) Await(p *Process) {
	c.AwaitOp(p, "", -1, 0)
}

// AwaitOp is Await, additionally recording what the process is about to
// block on — an operation name plus an optional peer rank and tag (pass
// peer < 0 to omit them) — so that a deadlock report can say which
// operation each stuck process was waiting for. The label costs only
// three field writes under the lock Await already takes.
func (c *Condition) AwaitOp(p *Process, op string, peer int, tag int64) {
	e := c.engine
	e.mu.Lock()
	defer e.mu.Unlock()
	if c.fired {
		return
	}
	p.blockOp, p.blockPeer, p.blockTag = op, peer, tag
	c.waiters = append(c.waiters, p)
	p.block()
	p.blockOp = ""
}

// AwaitAll blocks the process until every condition has fired.
func AwaitAll(p *Process, conds ...*Condition) {
	for _, c := range conds {
		c.Await(p)
	}
}

// Run executes the simulation until every spawned process has finished and
// the event queue is empty. It returns ErrDeadlock if processes remain
// blocked with no pending events, or the first process panic converted to
// an error by a recover in the caller (panics propagate).
func (e *Engine) Run() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return errors.New("sim: engine already run")
	}
	// Release all processes at time 0.
	for _, p := range e.procs {
		p.wake <- 0
	}
	for {
		// Wait until every runnable process has blocked or finished.
		for e.running > 0 {
			e.cond.Wait()
		}
		if e.failure != nil {
			err := e.failure
			e.stopped = true
			return err
		}
		if len(e.events) == 0 {
			allDone := true
			for _, p := range e.procs {
				if !p.done {
					allDone = false
					break
				}
			}
			e.stopped = true
			if !allDone {
				return e.deadlockError()
			}
			return nil
		}
		// Advance to the next event time and fire every event at it.
		next := e.events.peek().at
		e.now = next
		fired := 0
		for len(e.events) > 0 && e.events.peek().at == next {
			ev := heap.Pop(&e.events).(*event)
			ev.fn()
			fired++
		}
		if e.obs != nil {
			e.obs.OnAdvance(e.now, fired, len(e.events))
		}
	}
}

// deadlockError builds the ErrDeadlock report: every stuck process with
// the operation it is blocked on (capped at 8, the rest summarized).
// Called with the engine lock held.
func (e *Engine) deadlockError() error {
	var blocked []string
	total := 0
	for _, p := range e.procs {
		if p.done {
			continue
		}
		total++
		if len(blocked) < 8 {
			if d := p.blockDesc(); d != "" {
				blocked = append(blocked, fmt.Sprintf("%s blocked on %s", p.name, d))
			} else {
				blocked = append(blocked, p.name)
			}
		}
	}
	suffix := ""
	if total > len(blocked) {
		suffix = fmt.Sprintf(" … and %d more", total-len(blocked))
	}
	note := ""
	if e.deadlockNote != "" {
		note = "; " + e.deadlockNote
	}
	return fmt.Errorf("%w (%d blocked: %s%s%s)", ErrDeadlock, total, strings.Join(blocked, "; "), suffix, note)
}
