package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestServeBindErrorNamesAddress occupies a port and then asks serve to
// bind it again: the error must name the chosen address so a failed
// daemon start is diagnosable from the one line it prints.
func TestServeBindErrorNamesAddress(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	o := options{addr: ln.Addr().String(), timeout: time.Second, maxBody: 1 << 20}
	srv, httpSrv, _ := buildServers(o)
	err = serve(context.Background(), srv, httpSrv, o, nil)
	if err == nil {
		t.Fatal("double bind succeeded")
	}
	if !strings.Contains(err.Error(), o.addr) {
		t.Fatalf("bind error %q does not name the address %q", err, o.addr)
	}
}

// TestGracefulDrainOnSIGTERM exercises the real shutdown path end to end:
// a parked in-flight request survives a SIGTERM, /healthz flips to
// draining, new API requests are refused, and the daemon exits cleanly
// once the in-flight request completes.
func TestGracefulDrainOnSIGTERM(t *testing.T) {
	o := options{
		addr:     "127.0.0.1:0",
		cache:    -1, // every advise request reaches the (parked) evaluator
		timeout:  10 * time.Second,
		maxBody:  1 << 20,
		announce: 2 * time.Second,
		drain:    10 * time.Second,
	}
	srv, httpSrv, _ := buildServers(o)
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	var once sync.Once
	srv.AdviseHook = func() {
		once.Do(func() { close(started) })
		<-release
	}

	// The test registers the signal handler itself so the SIGTERM below is
	// guaranteed to be intercepted, exactly as main() does.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- serve(ctx, srv, httpSrv, o, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("server never came up")
	}
	base := "http://" + addr

	// Park one advise request inside its evaluation.
	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/advise", "application/json",
			strings.NewReader(`{"machine":"hydra","nodes":4,"collective":"alltoall","comm_size":16}`))
		if err != nil {
			inflight <- -1
			return
		}
		defer resp.Body.Close()
		_, _ = io.ReadAll(resp.Body)
		inflight <- resp.StatusCode
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never reached the evaluator")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// Within the announce window the listener is still open: /healthz
	// must report draining with 503.
	var status string
	var hcode int
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		var h struct{ Status string }
		_ = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		status, hcode = h.Status, resp.StatusCode
		if status == "draining" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status != "draining" || hcode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after SIGTERM = %d %q, want 503 draining", hcode, status)
	}

	// New API work is refused while draining.
	resp, err := http.Post(base+"/v1/map", "application/json",
		strings.NewReader(`{"hierarchy":"2,2,4","rank":5}`))
	if err != nil {
		t.Fatalf("draining server dropped the connection: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new request during drain: status %d, want 503", resp.StatusCode)
	}

	// The parked request completes once released, and the daemon exits 0.
	close(release)
	select {
	case code := <-inflight:
		if code != http.StatusOK {
			t.Fatalf("in-flight request finished with %d, want 200", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server never shut down")
	}
}
