// Command mrserved runs the mapping-advisory daemon: the internal/mapd
// service behind a plain net/http server with production hygiene —
// request body limits, per-evaluation timeouts, overload shedding, a
// circuit breaker around the advisor search, connection read/write
// deadlines, and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	mrserved -addr 127.0.0.1:8077 -cache 4096 -timeout 10s
//
// Endpoints: POST /v1/map, /v1/advise, /v1/select, /v1/metrics/order;
// GET /metrics (Prometheus), /healthz (healthy | degraded | draining).
//
// On SIGTERM the daemon first flips /healthz to draining (503) and
// refuses new API requests, holds the listener open for the announce
// window so load balancers observe the state change, then closes the
// listener and waits up to the drain budget for in-flight requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/mapd"
)

type options struct {
	addr        string
	cache       int
	shards      int
	workers     int
	timeout     time.Duration
	maxBody     int64
	maxInflight int
	announce    time.Duration
	drain       time.Duration
}

func buildServers(o options) (*mapd.Server, *http.Server) {
	srv := mapd.New(mapd.Config{
		CacheEntries:  o.cache,
		CacheShards:   o.shards,
		AdviseWorkers: o.workers,
		MaxBody:       o.maxBody,
		Timeout:       o.timeout,
		MaxInflight:   o.maxInflight,
	})
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      o.timeout + 5*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return srv, httpSrv
}

// serve listens on o.addr and blocks until ctx is cancelled (drain
// gracefully, return nil) or the listener fails. When ready is non-nil it
// receives the bound address once the listener is up.
func serve(ctx context.Context, srv *mapd.Server, httpSrv *http.Server, o options, ready chan<- string) error {
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	log.Printf("mrserved: listening on http://%s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
		return drainAndShutdown(srv, httpSrv, o.announce, o.drain)
	}
}

// drainAndShutdown performs the graceful exit: announce the draining state
// first, then stop accepting and wait for in-flight work.
func drainAndShutdown(srv *mapd.Server, httpSrv *http.Server, announce, drain time.Duration) error {
	log.Printf("mrserved: draining (announce %s, budget %s)", announce, drain)
	srv.StartDraining()
	time.Sleep(announce)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("mrserved: forced shutdown: %v", err)
		return httpSrv.Close()
	}
	log.Printf("mrserved: bye")
	return nil
}

func main() {
	o := options{}
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8077", "listen address")
	flag.IntVar(&o.cache, "cache", 4096, "result-cache capacity in entries (negative disables)")
	flag.IntVar(&o.shards, "shards", 16, "result-cache shard count")
	flag.IntVar(&o.workers, "workers", 0, "advisor worker-pool size per evaluation (0 = GOMAXPROCS)")
	flag.DurationVar(&o.timeout, "timeout", 10*time.Second, "per-evaluation budget")
	flag.Int64Var(&o.maxBody, "max-body", 1<<20, "maximum request body in bytes")
	flag.IntVar(&o.maxInflight, "max-inflight", 512, "in-flight request cap before shedding (negative disables)")
	flag.DurationVar(&o.announce, "announce", 500*time.Millisecond, "drain announcement window before the listener closes")
	flag.DurationVar(&o.drain, "drain", 5*time.Second, "graceful-shutdown drain budget")
	flag.Parse()

	srv, httpSrv := buildServers(o)
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, srv, httpSrv, o, nil); err != nil {
		fmt.Fprintln(os.Stderr, "mrserved:", err)
		os.Exit(1)
	}
}
