// Command mrserved runs the mapping-advisory daemon: the internal/mapd
// service behind a plain net/http server with production hygiene —
// request body limits, per-evaluation timeouts, overload shedding, a
// circuit breaker around the advisor search, connection read/write
// deadlines, and graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	mrserved -addr 127.0.0.1:8077 -cache 4096 -timeout 10s
//	mrserved -debug-addr 127.0.0.1:8078 -trace server-trace.json
//
// Endpoints: POST /v1/map, /v1/advise, /v1/select, /v1/metrics/order;
// GET /metrics (Prometheus), /v1/slo (burn rates), /healthz (healthy |
// degraded | draining). With -debug-addr a second listener serves
// net/http/pprof under /debug/pprof/ — separate from the API address so
// profiling is never exposed where the service is.
//
// Request telemetry is always on: the daemon extracts/injects W3C
// traceparent headers, emits one trace-correlated structured log line
// per request, samples runtime metrics (goroutines, heap, GC pauses,
// fds) into /metrics, and tracks rolling SLO burn rates. -sample tunes
// head sampling; -trace writes the committed request spans as Perfetto
// JSON on shutdown (open with mrtrace -open).
//
// On SIGTERM the daemon first flips /healthz to draining (503) and
// refuses new API requests, holds the listener open for the announce
// window so load balancers observe the state change, then closes the
// listener and waits up to the drain budget for in-flight requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/mapd"
	"repro/internal/obs"
	"repro/internal/obs/rt"
)

type options struct {
	addr         string
	name         string
	debugAddr    string
	traceFile    string
	sample       float64
	cache        int
	shards       int
	workers      int
	searchDepth  int
	timeout      time.Duration
	matrixBudget time.Duration
	maxBody      int64
	maxInflight  int
	statClasses  int
	announce     time.Duration
	drain        time.Duration
}

// logger is the process-wide trace-correlated structured logger; main
// replaces the writer-level defaults only via flags, so tests share it.
var logger = rt.NewTextLogger(os.Stderr, slog.LevelInfo)

func buildServers(o options) (*mapd.Server, *http.Server, *rt.Tracer) {
	tracer := rt.NewTracer(rt.Options{Service: "mrserved", SampleRatio: o.sample})
	srv := mapd.New(mapd.Config{
		Name:          o.name,
		CacheEntries:  o.cache,
		CacheShards:   o.shards,
		AdviseWorkers: o.workers,

		SearchDepthThreshold: o.searchDepth,
		MaxBody:              o.maxBody,
		Timeout:              o.timeout,
		MatrixBudget:         o.matrixBudget,
		MaxInflight:          o.maxInflight,
		StatsClasses:         o.statClasses,
		Tracer:               tracer,
		Logger:               logger,
	})
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      o.timeout + 5*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return srv, httpSrv, tracer
}

// serve listens on o.addr and blocks until ctx is cancelled (drain
// gracefully, return nil) or the listener fails. When ready is non-nil it
// receives the bound address once the listener is up.
func serve(ctx context.Context, srv *mapd.Server, httpSrv *http.Server, o options, ready chan<- string) error {
	// Announce the intent before binding: when the bind fails, the log
	// shows which address was attempted even though the error below also
	// names it.
	logger.Info("binding", "addr", o.addr)
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return fmt.Errorf("bind %s: %w", o.addr, err)
	}
	logger.Info("listening", "url", "http://"+ln.Addr().String())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
		return drainAndShutdown(srv, httpSrv, o.announce, o.drain)
	}
}

// serveDebug runs the pprof listener until ctx is cancelled. The handlers
// are mounted on a dedicated mux (not http.DefaultServeMux) so nothing
// else ever leaks onto the debug port.
func serveDebug(ctx context.Context, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	dbg := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		<-ctx.Done()
		_ = dbg.Close()
	}()
	logger.Info("debug listener (pprof)", "addr", addr)
	if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("debug listener failed", "addr", addr, "error", err)
	}
}

// drainAndShutdown performs the graceful exit: announce the draining state
// first, then stop accepting and wait for in-flight work.
func drainAndShutdown(srv *mapd.Server, httpSrv *http.Server, announce, drain time.Duration) error {
	logger.Info("draining", "announce", announce, "budget", drain)
	srv.StartDraining()
	time.Sleep(announce)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Warn("forced shutdown", "error", err)
		return httpSrv.Close()
	}
	logger.Info("bye")
	return nil
}

func main() {
	o := options{}
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8077", "listen address")
	flag.StringVar(&o.name, "name", "", "replica name announced in the x-mr-replica response header (for fleet routing)")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "optional net/http/pprof listen address (e.g. 127.0.0.1:8078)")
	flag.StringVar(&o.traceFile, "trace", "", "write the request-trace Perfetto JSON here on shutdown")
	flag.Float64Var(&o.sample, "sample", 1, "trace head-sampling ratio (1 = all; negative = errors only)")
	flag.IntVar(&o.cache, "cache", 4096, "result-cache capacity in entries (negative disables)")
	flag.IntVar(&o.shards, "shards", 16, "result-cache shard count")
	flag.IntVar(&o.workers, "workers", 0, "advisor worker-pool size per evaluation (0 = GOMAXPROCS)")
	flag.IntVar(&o.searchDepth, "search-depth-threshold", 0,
		"largest hierarchy depth advised with the exhaustive order search; deeper runs branch-and-bound/beam (0 = default 7, max 8)")
	flag.DurationVar(&o.timeout, "timeout", 10*time.Second, "per-evaluation budget")
	flag.DurationVar(&o.matrixBudget, "matrix-budget", 0, "matrix-aware search budget before degrading to the \u03c3-order fallback (0 = -timeout)")
	flag.Int64Var(&o.maxBody, "max-body", 1<<20, "maximum request body in bytes")
	flag.IntVar(&o.maxInflight, "max-inflight", 512, "in-flight request cap before shedding (negative disables)")
	flag.IntVar(&o.statClasses, "stats-classes", mapd.DefaultStatsClasses, "shape classes tracked by /v1/stats (Space-Saving top-K)")
	flag.DurationVar(&o.announce, "announce", 500*time.Millisecond, "drain announcement window before the listener closes")
	flag.DurationVar(&o.drain, "drain", 5*time.Second, "graceful-shutdown drain budget")
	flag.Parse()

	srv, httpSrv, tracer := buildServers(o)
	sampler := rt.StartSampler(rt.SamplerOptions{Registry: srv.Registry()})
	defer sampler.Stop()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if o.debugAddr != "" {
		go serveDebug(ctx, o.debugAddr)
	}
	err := serve(ctx, srv, httpSrv, o, nil)
	if o.traceFile != "" {
		if terr := obs.WriteTraceFile(o.traceFile, tracer.Scope()); terr != nil {
			logger.Error("writing trace", "path", o.traceFile, "error", terr)
			if err == nil {
				err = terr
			}
		} else {
			logger.Info("wrote trace", "path", o.traceFile)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrserved:", err)
		os.Exit(1)
	}
}
