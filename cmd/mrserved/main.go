// Command mrserved runs the mapping-advisory daemon: the internal/mapd
// service behind a plain net/http server with production hygiene —
// request body limits, per-evaluation timeouts, connection read/write
// deadlines, and graceful shutdown on SIGINT/SIGTERM.
//
// Usage:
//
//	mrserved -addr 127.0.0.1:8077 -cache 4096 -timeout 10s
//
// Endpoints: POST /v1/map, /v1/advise, /v1/select, /v1/metrics/order;
// GET /metrics (Prometheus), /healthz.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/mapd"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8077", "listen address")
	cache := flag.Int("cache", 4096, "result-cache capacity in entries (negative disables)")
	shards := flag.Int("shards", 16, "result-cache shard count")
	workers := flag.Int("workers", 0, "advisor worker-pool size per evaluation (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-evaluation budget")
	maxBody := flag.Int64("max-body", 1<<20, "maximum request body in bytes")
	drain := flag.Duration("drain", 5*time.Second, "graceful-shutdown drain budget")
	flag.Parse()

	srv := mapd.New(mapd.Config{
		CacheEntries:  *cache,
		CacheShards:   *shards,
		AdviseWorkers: *workers,
		MaxBody:       *maxBody,
		Timeout:       *timeout,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *timeout + 5*time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("mrserved: listening on http://%s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "mrserved:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Printf("mrserved: signal received, draining for up to %s", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("mrserved: forced shutdown: %v", err)
			_ = httpSrv.Close()
		}
		log.Printf("mrserved: bye")
	}
}
