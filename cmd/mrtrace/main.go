// Command mrtrace runs one small, fixed scenario of each paper workload
// with the observability layer enabled and writes its artifacts:
//
//	trace.json    Chrome trace-event JSON (open in ui.perfetto.dev);
//	              one Perfetto "process" per simulated node, one
//	              "thread" per MPI rank, plus a driver-phase track
//	metrics.prom  Prometheus text exposition of every counter, gauge
//	              and histogram
//	metrics.csv   the same registry as a flat CSV
//
// and prints a flame-style terminal summary: the top-k operations by
// cumulative virtual time and the per-hierarchy-level byte breakdown.
//
// Usage:
//
//	mrtrace -scenario bench            # 64-rank Alltoall sweep point
//	mrtrace -scenario cg -o out/       # CG on 8 cores of a LUMI node
//	mrtrace -scenario splatt -p2p      # CP-ALS with point-to-point events
//	mrtrace -open server-trace.json    # summarize an existing trace file
//
// -open reads a trace-event JSON file written elsewhere (e.g. mrserved's
// -trace output of request-scoped server spans) instead of running a
// scenario, and prints its metadata plus the same flame summary.
//
// -stitch merges several trace exports from cooperating processes — a
// gate's (mrgate -trace) and its replicas' (mrserved -trace) — into one
// Perfetto file joined on shared W3C trace ids, each input as its own
// process with clocks aligned to the first input's:
//
//	mrtrace -stitch gate.json,r0.json,r1.json -o out/
//
// writes out/stitched.json and prints one line per cross-process trace
// with the per-input span counts.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/cg"
	"repro/internal/cluster"
	"repro/internal/figures"
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/splatt"
	"repro/internal/tensor"
)

func main() {
	scenario := flag.String("scenario", "bench", "workload to trace: bench, cg, or splatt")
	open := flag.String("open", "", "summarize this trace-event JSON file instead of running a scenario")
	stitch := flag.String("stitch", "", "comma-separated trace exports to merge on shared trace ids (first file anchors the clock)")
	outDir := flag.String("o", ".", "directory for trace.json, metrics.prom, metrics.csv")
	topK := flag.Int("topk", 10, "operations to show in the flame summary")
	top := flag.Int("top", 0, "also print the N slowest spans per track (0 disables)")
	p2p := flag.Bool("p2p", false, "also record one instant event per point-to-point send")
	blockSpans := flag.Bool("blockspans", false, "also record engine block/wake spans (verbose)")
	flag.Parse()

	if *stitch != "" {
		if err := stitchTraces(os.Stdout, strings.Split(*stitch, ","), *outDir); err != nil {
			fmt.Fprintln(os.Stderr, "mrtrace:", err)
			os.Exit(1)
		}
		return
	}
	if *open != "" {
		if err := openTrace(os.Stdout, *open, *topK, *top); err != nil {
			fmt.Fprintln(os.Stderr, "mrtrace:", err)
			os.Exit(1)
		}
		return
	}

	sc := obs.New(obs.Options{P2PEvents: *p2p, BlockSpans: *blockSpans})
	var err error
	switch *scenario {
	case "bench":
		err = runBench(sc)
	case "cg":
		err = runCG(sc)
	case "splatt":
		err = runSplatt(sc)
	default:
		fmt.Fprintf(os.Stderr, "mrtrace: unknown scenario %q (have bench, cg, splatt)\n", *scenario)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrtrace:", err)
		os.Exit(1)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "mrtrace:", err)
		os.Exit(1)
	}
	for _, art := range []struct {
		name  string
		write func(path string) error
	}{
		{"trace.json", func(p string) error { return obs.WriteTraceFile(p, sc) }},
		{"metrics.prom", func(p string) error { return obs.WritePrometheusFile(p, sc.Registry()) }},
		{"metrics.csv", func(p string) error { return obs.WriteCSVFile(p, sc.Registry()) }},
	} {
		path := filepath.Join(*outDir, art.name)
		if err := art.write(path); err != nil {
			fmt.Fprintln(os.Stderr, "mrtrace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}

	fmt.Println()
	fmt.Print(obs.Summary(sc, *topK))

	// Cross-check the per-level attribution: the bytes attributed to each
	// hierarchy level must sum to the total bytes moved.
	reg := sc.Registry()
	total := reg.FindCounter("mpi_bytes_total")
	perLevel := reg.SumCounters("mpi_level_bytes_total")
	if math.Abs(total-perLevel) > 0.5 {
		fmt.Fprintf(os.Stderr, "mrtrace: per-level bytes (%.0f) do not sum to total bytes (%.0f)\n",
			perLevel, total)
		os.Exit(1)
	}
	fmt.Printf("\nper-level byte check: %.0f bytes attributed across levels == %.0f total\n",
		perLevel, total)
}

// openTrace loads an existing trace-event JSON file and prints its run
// metadata, track inventory, and the flame summary — the read side of the
// serving-telemetry loop: mrserved -trace writes, mrtrace -open drills in.
// With top > 0 it appends the per-track slowest-span listing.
func openTrace(w io.Writer, path string, topK, top int) error {
	sc, err := obs.ReadTraceFile(path)
	if err != nil {
		return err
	}
	spans := sc.Spans()
	fmt.Fprintf(w, "%s: %d spans, %d instants\n", path, len(spans), len(sc.Instants()))
	meta := sc.Meta()
	if len(meta) > 0 {
		keys := make([]string, 0, len(meta))
		for k := range meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %s = %s\n", k, meta[k])
		}
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, obs.Summary(sc, topK))
	if top > 0 {
		fmt.Fprintln(w)
		fmt.Fprint(w, obs.FormatTopSpans(obs.TopSpans(sc, top)))
	}
	return nil
}

// stitchTraces merges the given trace exports into outDir/stitched.json
// via obs.Stitch, labelling each Perfetto process by its file's base name,
// and prints one line per cross-process trace id with the per-input span
// counts — the join proof the fleet smoke test greps for.
func stitchTraces(w io.Writer, paths []string, outDir string) error {
	var clean []string
	for _, p := range paths {
		if p = strings.TrimSpace(p); p != "" {
			clean = append(clean, p)
		}
	}
	if len(clean) < 2 {
		return fmt.Errorf("-stitch needs at least two trace files, got %d", len(clean))
	}
	inputs := make([]obs.StitchInput, 0, len(clean))
	for _, p := range clean {
		sc, err := obs.ReadTraceFile(p)
		if err != nil {
			return err
		}
		label := strings.TrimSuffix(filepath.Base(p), filepath.Ext(p))
		inputs = append(inputs, obs.StitchInput{Label: label, Scope: sc})
	}
	merged, summaries := obs.Stitch(inputs)
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	out := filepath.Join(outDir, "stitched.json")
	if err := obs.WriteTraceFile(out, merged); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%d spans from %d inputs)\n", out, len(merged.Spans()), len(inputs))
	shared := 0
	for _, s := range summaries {
		if !s.Shared {
			continue
		}
		shared++
		fmt.Fprintf(w, "trace %s:", s.ID)
		for i, n := range s.Spans {
			if n > 0 {
				fmt.Fprintf(w, " %s=%d", inputs[i].Label, n)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%d traces, %d cross-process\n", len(summaries), shared)
	return nil
}

// runBench traces one simultaneous-communicators Alltoall measurement on
// two Hydra nodes (64 ranks, four 16-rank communicators, 4 MB total).
func runBench(sc *obs.Scope) error {
	sigma := []int{0, 1, 2, 3}
	size := int64(4 << 20)
	cfg := bench.Config{
		Spec:      cluster.Hydra(2, 1),
		Hierarchy: cluster.HydraHierarchy(2),
		CommSize:  16,
		Coll:      bench.Alltoall,
		Orders:    [][]int{sigma},
		Sizes:     []int64{size},
		Iters:     2,
		MPI:       mpi.Config{Obs: sc},
	}
	pt, err := bench.Measure(cfg, sigma, size, true)
	if err != nil {
		return err
	}
	fmt.Printf("bench: 64-rank Alltoall, 4 subcommunicators of 16, %d B total: %s MB/s\n",
		pt.Size, bench.FormatMBps(pt.Bandwidth))
	return nil
}

// runCG traces the Class S conjugate gradient on 8 cores of one LUMI
// node, using the first distinct map_cpu selection for p=8.
func runCG(sc *obs.Scope) error {
	sels, err := figures.DistinctSelections(8)
	if err != nil {
		return err
	}
	cores := sels[0].Cores
	res, err := cg.Run(cluster.LUMINode(), cores, cg.ClassS(), mpi.Config{Obs: sc})
	if err != nil {
		return err
	}
	fmt.Printf("cg: Class S on cores %v of one LUMI node: %.6f s\n", cores, res.Duration)
	return nil
}

// runSplatt traces a small CP-ALS: two Hydra nodes (64 ranks) on a 4×4×4
// process grid with a synthetic nell-like tensor.
func runSplatt(sc *obs.Scope) error {
	res, err := splatt.Run(splatt.Config{
		Spec:      cluster.Hydra(2, 1),
		Hierarchy: cluster.HydraHierarchy(2),
		Order:     cluster.HydraSlurmDefaultOrder(),
		Grid:      tensor.Grid{4, 4, 4},
		Tensor:    tensor.SyntheticNell([3]int{20_000, 2_000, 2_000}, 100_000, 1001),
		Rank:      16,
		Iters:     2,
		MPI:       mpi.Config{Obs: sc},
	})
	if err != nil {
		return err
	}
	fmt.Printf("splatt: CP-ALS rank 16, 2 iterations on 64 ranks: %.6f s\n", res.Duration)
	return nil
}
