// The -stitch mode end to end on files: two tracer exports sharing a
// trace id round-trip through WriteTraceFile, merge into stitched.json,
// and the printed join lines name both inputs on the shared id.

package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/rt"
)

func TestStitchTracesFiles(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(2000, 0)
	step := func() time.Time { now = now.Add(5 * time.Millisecond); return now }

	gate := rt.NewTracer(rt.Options{Service: "mrgate", Now: step})
	ctx, root := gate.StartRequest(context.Background(), "gate /v1/advise", "")
	tp := root.Traceparent()
	_, proxy := rt.StartSpan(ctx, "proxy r0")
	proxy.End()
	root.End()

	rep := rt.NewTracer(rt.Options{Service: "mrserved", Now: step})
	_, rroot := rep.StartRequest(context.Background(), "http /v1/advise", tp)
	rroot.End()

	gatePath := filepath.Join(dir, "mrgate-trace.json")
	repPath := filepath.Join(dir, "mrserved-0-trace.json")
	if err := obs.WriteTraceFile(gatePath, gate.Scope()); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteTraceFile(repPath, rep.Scope()); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := stitchTraces(&buf, strings.Split(gatePath+" , "+repPath, ","), filepath.Join(dir, "out")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	id, _, _, ok := rt.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("bad traceparent %q", tp)
	}
	joinLine := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "trace "+id.String()+":") {
			joinLine = l
		}
	}
	if joinLine == "" {
		t.Fatalf("no join line for trace %s in output:\n%s", id, out)
	}
	if !strings.Contains(joinLine, "mrgate-trace=2") || !strings.Contains(joinLine, "mrserved-0-trace=1") {
		t.Fatalf("join line %q missing per-input span counts", joinLine)
	}
	if !strings.Contains(out, "1 traces, 1 cross-process") {
		t.Fatalf("summary line missing:\n%s", out)
	}

	stitched, err := obs.ReadTraceFile(filepath.Join(dir, "out", "stitched.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(stitched.Spans()); got != 3 {
		t.Fatalf("stitched.json has %d spans, want 3", got)
	}
	if got := stitched.ProcessName(1); got != "mrgate-trace" {
		t.Fatalf("pid 1 = %q", got)
	}
	if got := stitched.ProcessName(2); got != "mrserved-0-trace" {
		t.Fatalf("pid 2 = %q", got)
	}
}

func TestStitchTracesNeedsTwoFiles(t *testing.T) {
	var buf bytes.Buffer
	if err := stitchTraces(&buf, []string{"only.json", " "}, t.TempDir()); err == nil {
		t.Fatal("one input accepted")
	}
}
