package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/rt"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// TestOpenSampledServerTraceGolden drives the full serving-telemetry loop
// offline: a deterministic tracer records one sampled request's spans,
// the Perfetto writer persists them (mrserved's -trace path), and
// openTrace (mrtrace -open) renders the summary, compared to a golden.
func TestOpenSampledServerTraceGolden(t *testing.T) {
	now := time.Unix(1000, 0)
	step := func() time.Time { now = now.Add(10 * time.Millisecond); return now }
	var ctr uint64
	tr := rt.NewTracer(rt.Options{Service: "mrserved", SampleRatio: 1,
		Now: step, Rand: func() uint64 { ctr++; return ctr }})

	const upstream = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	ctx, root := tr.StartRequest(context.Background(), "http /v1/advise", upstream)
	_, lookup := rt.StartSpan(ctx, "cache.lookup")
	lookup.SetAttr("hit", 0)
	lookup.End()
	sfCtx, sf := rt.StartSpan(ctx, "singleflight")
	_, eval := rt.StartSpan(sfCtx, "evaluate")
	eval.End()
	sf.SetAttr("shared", 0)
	sf.End()
	root.SetAttr("http_status", 200)
	root.End()

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := obs.WriteTraceFile(path, tr.Scope()); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := openTrace(&buf, path, 10, 0); err != nil {
		t.Fatal(err)
	}
	first, rest, _ := strings.Cut(buf.String(), "\n")
	if !strings.HasSuffix(first, ": 4 spans, 0 instants") {
		t.Fatalf("header line %q, want the span inventory", first)
	}

	golden := filepath.Join("testdata", "server_trace_summary.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(rest), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./cmd/mrtrace -run Golden -update)", err)
	}
	if rest != string(want) {
		t.Fatalf("summary drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", rest, want)
	}

	// The committed trace is attributable: its thread track carries the
	// injected trace id, visible to anyone opening the file in Perfetto.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "trace 0af7651916cd43dd8448eb211c80319c") {
		t.Fatalf("trace file does not name the track after the injected trace id:\n%s", raw)
	}
}

func TestOpenTraceMissingFile(t *testing.T) {
	if err := openTrace(&bytes.Buffer{}, filepath.Join(t.TempDir(), "nope.json"), 5, 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestTopSpansPerTrackGolden exercises mrtrace -top: a deterministic
// two-request trace is written to disk, reloaded, and the per-track
// slowest-span listing is compared to a golden.
func TestTopSpansPerTrackGolden(t *testing.T) {
	now := time.Unix(2000, 0)
	step := func() time.Time { now = now.Add(5 * time.Millisecond); return now }
	var ctr uint64
	tr := rt.NewTracer(rt.Options{Service: "mrserved", SampleRatio: 1,
		Now: step, Rand: func() uint64 { ctr++; return ctr }})

	for _, name := range []string{"http /v1/map", "http /v1/advise"} {
		ctx, root := tr.StartRequest(context.Background(), name, "")
		_, lookup := rt.StartSpan(ctx, "cache.lookup")
		lookup.End()
		_, eval := rt.StartSpan(ctx, "evaluate")
		eval.SetAttr("orders", 24)
		eval.End()
		root.SetAttr("http_status", 200)
		root.End()
	}

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := obs.WriteTraceFile(path, tr.Scope()); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := openTrace(&buf, path, 5, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The -top listing is everything after the flame summary's blank line.
	i := strings.Index(out, "track ")
	if i < 0 {
		t.Fatalf("-top produced no per-track listing:\n%s", out)
	}
	listing := out[i:]

	golden := filepath.Join("testdata", "top_spans.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(listing), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with go test ./cmd/mrtrace -run Golden -update)", err)
	}
	if listing != string(want) {
		t.Fatalf("-top listing drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", listing, want)
	}
}
