package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testPolicy(retries int) retryPolicy {
	return retryPolicy{
		retries:    retries,
		backoff:    time.Millisecond,
		maxBackoff: 8 * time.Millisecond,
		sleep:      func(time.Duration) {},
	}
}

func TestBackoffDelayCappedAndJittered(t *testing.T) {
	p := retryPolicy{retries: 5, backoff: 10 * time.Millisecond, maxBackoff: 80 * time.Millisecond}
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 10; attempt++ {
		base := p.backoff << uint(attempt)
		if base > p.maxBackoff || base <= 0 {
			base = p.maxBackoff
		}
		for i := 0; i < 100; i++ {
			d := p.delay(attempt, 0, rng)
			if d < base/2 || d > base {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, base/2, base)
			}
		}
	}
	// Retry-After dominates a shorter computed backoff.
	if d := p.delay(0, time.Second, rng); d != time.Second {
		t.Fatalf("Retry-After not honoured: %v", d)
	}
}

func TestDoShotRetriesShedThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":{}}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	out := doShot(ts.Client(), []string{ts.URL}, 0, shot{endpoint: "/v1/map"}, testPolicy(3), rand.New(rand.NewSource(1)), "", nil)
	if !out.ok || out.gaveUp {
		t.Fatalf("outcome not ok: %+v", out)
	}
	if out.attempts != 3 || out.shed != 2 {
		t.Fatalf("attempts %d shed %d, want 3 and 2", out.attempts, out.shed)
	}
	if out.serverErr != 0 || out.transport != 0 || out.clientErr != 0 {
		t.Fatalf("misclassified: %+v", out)
	}
}

func TestDoShotClassifiesOther5xxSeparately(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	out := doShot(ts.Client(), []string{ts.URL}, 0, shot{endpoint: "/v1/map"}, testPolicy(2), rand.New(rand.NewSource(1)), "", nil)
	if out.ok || !out.gaveUp {
		t.Fatalf("500s must exhaust retries: %+v", out)
	}
	if out.attempts != 3 || out.serverErr != 3 || out.shed != 0 {
		t.Fatalf("attempts %d serverErr %d shed %d, want 3/3/0", out.attempts, out.serverErr, out.shed)
	}
}

func TestDoShotDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad", http.StatusBadRequest)
	}))
	defer ts.Close()

	out := doShot(ts.Client(), []string{ts.URL}, 0, shot{endpoint: "/v1/map"}, testPolicy(5), rand.New(rand.NewSource(1)), "", nil)
	if out.ok || out.gaveUp {
		t.Fatalf("4xx is a terminal client error: %+v", out)
	}
	if calls.Load() != 1 || out.attempts != 1 || out.clientErr != 1 {
		t.Fatalf("4xx was retried: calls %d, %+v", calls.Load(), out)
	}
}

func TestDoShotClassifiesTransportErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing is listening: every attempt is a transport error

	out := doShot(&http.Client{Timeout: time.Second}, []string{ts.URL}, 0, shot{endpoint: "/v1/map"},
		testPolicy(2), rand.New(rand.NewSource(1)), "", nil)
	if out.ok || !out.gaveUp {
		t.Fatalf("dead server must exhaust retries: %+v", out)
	}
	if out.transport != 3 || out.serverErr != 0 || out.shed != 0 {
		t.Fatalf("misclassified transport failure: %+v", out)
	}
}

func TestTotalsSeparateRetriesFromGoodput(t *testing.T) {
	var tt totals
	tt.add(outcome{ok: true, attempts: 3, shed: 2, latency: time.Millisecond}, true)
	tt.add(outcome{attempts: 2, transport: 2, gaveUp: true}, true)
	if tt.ok != 1 || tt.attempts != 5 || tt.retries != 3 {
		t.Fatalf("totals wrong: %+v", tt)
	}
	if tt.shed != 2 || tt.transport != 2 || tt.gaveUp != 1 {
		t.Fatalf("classification wrong: %+v", tt)
	}
	if len(tt.latencies) != 1 {
		t.Fatalf("latency recorded for failed request: %+v", tt)
	}
}

// TestDoShotInjectsTraceparentAndCapturesTraceID: the injected header
// reaches the server on every attempt, and the outcome records the trace
// id the server's traceparent response header announces.
func TestDoShotInjectsTraceparentAndCapturesTraceID(t *testing.T) {
	const inject = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get("traceparent"); got != inject {
			t.Errorf("attempt %d: traceparent %q, want %q", calls.Load(), got, inject)
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("traceparent", "00-0af7651916cd43dd8448eb211c80319c-00f067aa0ba902b7-01")
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	out := doShot(ts.Client(), []string{ts.URL}, 0, shot{endpoint: "/v1/map"}, testPolicy(2), rand.New(rand.NewSource(1)), inject, nil)
	if !out.ok || out.attempts != 2 {
		t.Fatalf("outcome %+v", out)
	}
	if out.traceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("traceID %q not captured from response header", out.traceID)
	}
}

func TestExemplarBucketsKeepSlowestTrace(t *testing.T) {
	bs := newExemplarBuckets()
	observe(bs, 800*time.Microsecond, "aa") // bucket ≤1ms
	observe(bs, 900*time.Microsecond, "bb") // same bucket, slower: replaces
	observe(bs, 850*time.Microsecond, "cc") // same bucket, faster: kept out
	observe(bs, 3*time.Millisecond, "dd")   // bucket ≤5ms
	observe(bs, 2*time.Second, "ee")        // +Inf bucket
	observe(bs, 4*time.Millisecond, "")     // counted, no exemplar offered

	if bs[0].count != 3 || bs[0].exemplarID != "bb" {
		t.Fatalf("≤1ms bucket %+v, want count 3 exemplar bb", bs[0])
	}
	if bs[2].count != 2 || bs[2].exemplarID != "dd" {
		t.Fatalf("≤5ms bucket %+v, want count 2 exemplar dd", bs[2])
	}
	last := bs[len(bs)-1]
	if last.le != 0 || last.count != 1 || last.exemplarID != "ee" {
		t.Fatalf("+Inf bucket %+v", last)
	}

	// A boundary value lands in the bucket it bounds (le is inclusive).
	bs2 := newExemplarBuckets()
	observe(bs2, time.Millisecond, "edge")
	if bs2[0].count != 1 {
		t.Fatalf("1ms sample missed the ≤1ms bucket: %+v", bs2[0])
	}

	// Merging prefers the slower exemplar and sums counts.
	mergeBuckets(bs, bs2)
	if bs[0].count != 4 || bs[0].exemplarID != "edge" {
		t.Fatalf("merged ≤1ms bucket %+v, want count 4 exemplar edge (1ms > 900µs)", bs[0])
	}

	var buf strings.Builder
	printBuckets(&buf, bs)
	for _, want := range []string{"≤ 1ms", "edge", "+Inf", "ee"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, buf.String())
		}
	}
}

// TestTotalsCollectExemplarBuckets: add feeds the histogram only for
// measured successes, and merge combines worker histograms.
func TestTotalsCollectExemplarBuckets(t *testing.T) {
	var a, b, all totals
	a.add(outcome{ok: true, attempts: 1, latency: 2 * time.Millisecond, traceID: "t1"}, true)
	a.add(outcome{ok: true, attempts: 1, latency: 2 * time.Millisecond, traceID: "warm"}, false)
	b.add(outcome{ok: true, attempts: 1, latency: 30 * time.Millisecond, traceID: "t2"}, true)
	all.merge(a)
	all.merge(b)
	var n int64
	for _, bk := range all.buckets {
		n += bk.count
	}
	if n != 2 {
		t.Fatalf("histogram holds %d samples, want 2 (warm-up excluded)", n)
	}
	var buf strings.Builder
	printBuckets(&buf, all.buckets)
	if !strings.Contains(buf.String(), "t1") || !strings.Contains(buf.String(), "t2") {
		t.Fatalf("merged exemplars missing:\n%s", buf.String())
	}
}

func TestSamplerUniformWhenNoSkew(t *testing.T) {
	s := newSampler(10, 0)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 10)
	for i := 0; i < 10_000; i++ {
		counts[s.pick(rng)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("uniform sampler index %d got %d of 10000, want ~1000", i, c)
		}
	}
}

func TestSamplerSkewConcentrates(t *testing.T) {
	s := newSampler(100, 1.2)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 100)
	n := 20_000
	for i := 0; i < n; i++ {
		idx := s.pick(rng)
		if idx < 0 || idx >= 100 {
			t.Fatalf("sampler returned out-of-range index %d", idx)
		}
		counts[idx]++
	}
	// Zipf(1.2) over 100 items puts >35% of mass on the top 3 indices; a
	// uniform draw would give them 3%.
	top3 := counts[0] + counts[1] + counts[2]
	if got := float64(top3) / float64(n); got < 0.30 {
		t.Fatalf("skewed sampler top-3 share = %.2f, want > 0.30", got)
	}
	// And the distribution must be monotone-ish: the first index beats the
	// fiftieth by a wide margin.
	if counts[0] < 4*counts[49] {
		t.Fatalf("counts[0]=%d not ≫ counts[49]=%d", counts[0], counts[49])
	}
}

func TestBuildReportJSON(t *testing.T) {
	var tt totals
	tt.ok, tt.attempts, tt.retries, tt.shed = 90, 100, 10, 7
	tt.latencies = []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond, 100 * time.Millisecond,
	}
	tt.buckets = newExemplarBuckets()
	observe(tt.buckets, 2*time.Millisecond, "abc")
	rep := buildReport(tt, 2*time.Second, 8, 42, 1.2)
	if rep.GoodputReqS != 45 {
		t.Fatalf("goodput = %v, want 45", rep.GoodputReqS)
	}
	if rep.P50Ms != 2 || rep.MaxMs != 100 {
		t.Fatalf("p50 = %v, max = %v", rep.P50Ms, rep.MaxMs)
	}
	if rep.Skew != 1.2 || rep.Workers != 8 || rep.Shapes != 42 {
		t.Fatalf("config echo wrong: %+v", rep)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Shed != 7 || len(back.Buckets) != 1 || back.Buckets[0].ExemplarTrace != "abc" {
		t.Fatalf("round-trip lost fields: %+v", back)
	}
}

// Fleet mode: a dead target costs one attempt — the retry rotates to the
// next target — and per-target stats attribute the success to the replica
// the x-mr-replica header names.
func TestDoShotRotatesTargetsOnRetry(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // nothing listening
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("x-mr-replica", "r1")
		w.Write([]byte(`{}`))
	}))
	defer alive.Close()

	var tt totals
	out := doShot(&http.Client{Timeout: time.Second}, []string{dead.URL, alive.URL}, 0,
		shot{endpoint: "/v1/map"}, testPolicy(2), rand.New(rand.NewSource(1)), "", tt.tally)
	if !out.ok || out.gaveUp {
		t.Fatalf("retry did not rotate to the live target: %+v", out)
	}
	if out.attempts != 2 || out.transport != 1 {
		t.Fatalf("attempts %d transport %d, want 2 and 1", out.attempts, out.transport)
	}
	if ts := tt.perTarget[dead.URL]; ts == nil || ts.transport != 1 {
		t.Fatalf("dead target not attributed: %+v", tt.perTarget)
	}
	if ts := tt.perTarget["r1"]; ts == nil || ts.ok != 1 || len(ts.latencies) != 1 {
		t.Fatalf("success not attributed to replica r1: %+v", tt.perTarget)
	}
}

func TestTotalsMergePerTarget(t *testing.T) {
	var a, b, all totals
	sa := a.tally("r0")
	sa.ok, sa.attempts, sa.latencies = 2, 3, []time.Duration{time.Millisecond, 2 * time.Millisecond}
	sb := b.tally("r0")
	sb.ok, sb.attempts, sb.shed = 1, 2, 1
	sb2 := b.tally("r1")
	sb2.ok, sb2.attempts = 4, 4
	all.merge(a)
	all.merge(b)
	r0 := all.perTarget["r0"]
	if r0 == nil || r0.ok != 3 || r0.attempts != 5 || r0.shed != 1 || len(r0.latencies) != 2 {
		t.Fatalf("merged r0 wrong: %+v", r0)
	}
	if r1 := all.perTarget["r1"]; r1 == nil || r1.ok != 4 {
		t.Fatalf("merged r1 wrong: %+v", r1)
	}
}

func TestTargetReportsSortedWithPercentiles(t *testing.T) {
	var tt totals
	s0 := tt.tally("r1")
	s0.ok, s0.attempts = 10, 12
	for i := 1; i <= 10; i++ {
		s0.latencies = append(s0.latencies, time.Duration(i)*time.Millisecond)
	}
	s1 := tt.tally("r0")
	s1.ok, s1.attempts, s1.transport = 5, 6, 1

	rows := targetReports(tt.perTarget, 2*time.Second)
	if len(rows) != 2 || rows[0].Target != "r0" || rows[1].Target != "r1" {
		t.Fatalf("rows not sorted by target: %+v", rows)
	}
	if rows[1].GoodputReqS != 5 {
		t.Fatalf("r1 goodput %v, want 10/2s = 5", rows[1].GoodputReqS)
	}
	if rows[1].P50Ms != 5 || rows[1].P99Ms != 9 {
		t.Fatalf("r1 percentiles p50=%v p99=%v, want 5 and 9", rows[1].P50Ms, rows[1].P99Ms)
	}

	// And they survive the JSON round trip inside the report.
	rep := buildReport(tt, 2*time.Second, 4, 10, 0)
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Targets) != 2 || back.Targets[1].OK != 10 {
		t.Fatalf("targets lost in round trip: %+v", back.Targets)
	}
}
