package main

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func testPolicy(retries int) retryPolicy {
	return retryPolicy{
		retries:    retries,
		backoff:    time.Millisecond,
		maxBackoff: 8 * time.Millisecond,
		sleep:      func(time.Duration) {},
	}
}

func TestBackoffDelayCappedAndJittered(t *testing.T) {
	p := retryPolicy{retries: 5, backoff: 10 * time.Millisecond, maxBackoff: 80 * time.Millisecond}
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 10; attempt++ {
		base := p.backoff << uint(attempt)
		if base > p.maxBackoff || base <= 0 {
			base = p.maxBackoff
		}
		for i := 0; i < 100; i++ {
			d := p.delay(attempt, 0, rng)
			if d < base/2 || d > base {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, base/2, base)
			}
		}
	}
	// Retry-After dominates a shorter computed backoff.
	if d := p.delay(0, time.Second, rng); d != time.Second {
		t.Fatalf("Retry-After not honoured: %v", d)
	}
}

func TestDoShotRetriesShedThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":{}}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	out := doShot(ts.Client(), ts.URL, shot{endpoint: "/v1/map"}, testPolicy(3), rand.New(rand.NewSource(1)))
	if !out.ok || out.gaveUp {
		t.Fatalf("outcome not ok: %+v", out)
	}
	if out.attempts != 3 || out.shed != 2 {
		t.Fatalf("attempts %d shed %d, want 3 and 2", out.attempts, out.shed)
	}
	if out.serverErr != 0 || out.transport != 0 || out.clientErr != 0 {
		t.Fatalf("misclassified: %+v", out)
	}
}

func TestDoShotClassifiesOther5xxSeparately(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	out := doShot(ts.Client(), ts.URL, shot{endpoint: "/v1/map"}, testPolicy(2), rand.New(rand.NewSource(1)))
	if out.ok || !out.gaveUp {
		t.Fatalf("500s must exhaust retries: %+v", out)
	}
	if out.attempts != 3 || out.serverErr != 3 || out.shed != 0 {
		t.Fatalf("attempts %d serverErr %d shed %d, want 3/3/0", out.attempts, out.serverErr, out.shed)
	}
}

func TestDoShotDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad", http.StatusBadRequest)
	}))
	defer ts.Close()

	out := doShot(ts.Client(), ts.URL, shot{endpoint: "/v1/map"}, testPolicy(5), rand.New(rand.NewSource(1)))
	if out.ok || out.gaveUp {
		t.Fatalf("4xx is a terminal client error: %+v", out)
	}
	if calls.Load() != 1 || out.attempts != 1 || out.clientErr != 1 {
		t.Fatalf("4xx was retried: calls %d, %+v", calls.Load(), out)
	}
}

func TestDoShotClassifiesTransportErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing is listening: every attempt is a transport error

	out := doShot(&http.Client{Timeout: time.Second}, ts.URL, shot{endpoint: "/v1/map"},
		testPolicy(2), rand.New(rand.NewSource(1)))
	if out.ok || !out.gaveUp {
		t.Fatalf("dead server must exhaust retries: %+v", out)
	}
	if out.transport != 3 || out.serverErr != 0 || out.shed != 0 {
		t.Fatalf("misclassified transport failure: %+v", out)
	}
}

func TestTotalsSeparateRetriesFromGoodput(t *testing.T) {
	var tt totals
	tt.add(outcome{ok: true, attempts: 3, shed: 2, latency: time.Millisecond}, true)
	tt.add(outcome{attempts: 2, transport: 2, gaveUp: true}, true)
	if tt.ok != 1 || tt.attempts != 5 || tt.retries != 3 {
		t.Fatalf("totals wrong: %+v", tt)
	}
	if tt.shed != 2 || tt.transport != 2 || tt.gaveUp != 1 {
		t.Fatalf("classification wrong: %+v", tt)
	}
	if len(tt.latencies) != 1 {
		t.Fatalf("latency recorded for failed request: %+v", tt)
	}
}
