// Exemplar drill-down: bucket exemplar trace ids resolve through a
// stitched gate+replica scope into the gate-vs-server latency split.

package main

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/rt"
)

func TestResolveBucketSplit(t *testing.T) {
	// Gate: a 30ms route root wrapping a 20ms proxy attempt.
	gateNow := time.Unix(3000, 0)
	gate := rt.NewTracer(rt.Options{Service: "mrgate", Now: func() time.Time { return gateNow }})
	ctx, root := gate.StartRequest(context.Background(), "gate /v1/advise", "")
	tp := root.Traceparent()
	gateNow = gateNow.Add(5 * time.Millisecond)
	_, proxy := rt.StartSpan(ctx, "proxy r0")
	gateNow = gateNow.Add(20 * time.Millisecond)
	proxy.End()
	gateNow = gateNow.Add(5 * time.Millisecond)
	root.End()

	// Replica: the same trace's 18ms server-side root.
	repNow := time.Unix(4000, 0)
	rep := rt.NewTracer(rt.Options{Service: "mrserved", Now: func() time.Time { return repNow }})
	_, rroot := rep.StartRequest(context.Background(), "http /v1/advise", tp)
	repNow = repNow.Add(18 * time.Millisecond)
	rroot.End()

	stitched, _ := obs.Stitch([]obs.StitchInput{
		{Label: "mrgate", Scope: gate.Scope()},
		{Label: "mrserved-0", Scope: rep.Scope()},
	})

	id, _, _, ok := rt.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("bad traceparent %q", tp)
	}
	buckets := []bucketReport{
		{LeMs: 50, Count: 3, ExemplarTrace: id.String(), ExemplarMs: 31},
		{LeMs: 100, Count: 1, ExemplarTrace: "feedfacefeedfacefeedfacefeedface"},
		{LeMs: 0, Count: 2},
	}
	resolveBucketSplit(buckets, stitched)

	const eps = 1e-6
	if math.Abs(buckets[0].GateMs-30) > eps || math.Abs(buckets[0].ServerMs-18) > eps {
		t.Fatalf("split = gate %.3fms / server %.3fms, want 30/18", buckets[0].GateMs, buckets[0].ServerMs)
	}
	if buckets[1].GateMs != 0 || buckets[1].ServerMs != 0 {
		t.Fatalf("unknown trace id annotated: %+v", buckets[1])
	}
	if buckets[2].GateMs != 0 || buckets[2].ServerMs != 0 {
		t.Fatalf("exemplar-less bucket annotated: %+v", buckets[2])
	}
}
