// Command mrload is a closed-loop load generator for mrserved: a fixed
// number of workers each keep exactly one request in flight against a
// mixed workload spanning all four query endpoints, then report
// throughput and latency percentiles. It is the measurable baseline for
// the serving path.
//
// Usage:
//
//	mrserved &
//	mrload -url http://127.0.0.1:8077 -c 64 -d 10s
//
// The workload mixes distinct request shapes (different hierarchies,
// orders, ranks, machines, collectives), so after a warm-up pass the
// daemon serves from its result cache — the steady state the service is
// designed for. Use -spread to multiply the number of distinct advise
// scenarios and exercise the evaluation path instead.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/mapd"
)

type shot struct {
	endpoint string
	body     []byte
}

// workload builds the pool of request bodies the workers cycle through.
func workload(spread int) []shot {
	var shots []shot
	add := func(endpoint string, v any) {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err)
		}
		shots = append(shots, shot{endpoint: endpoint, body: b})
	}
	hiers := []string{"2,2,4", "2,4,2,8", "16,2,2,8", "4,2,2,2,4"}
	orders := map[string][]string{
		"2,2,4":     {"", "0-1-2", "2-1-0", "1-2-0"},
		"2,4,2,8":   {"", "3-2-1-0", "0-1-2-3", "2-1-0-3"},
		"16,2,2,8":  {"", "3-2-1-0", "0-3-2-1"},
		"4,2,2,2,4": {"", "4-3-2-1-0", "0-1-2-3-4"},
	}
	for _, h := range hiers {
		for _, o := range orders[h] {
			for _, r := range []int{0, 5, 13} {
				rank := r
				add("/v1/map", mapd.MapRequest{Hierarchy: h, Order: o, Rank: &rank})
			}
			add("/v1/map", mapd.MapRequest{Hierarchy: h, Order: o, Table: true})
			add("/v1/metrics/order", mapd.OrderMetricsRequest{Hierarchy: h, Order: o})
			add("/v1/select", mapd.SelectRequest{Hierarchy: h, Order: o, N: 8})
		}
	}
	for i := 0; i < spread; i++ {
		for _, m := range []string{"hydra", "lumi"} {
			for _, coll := range []string{"alltoall", "allgather", "allreduce"} {
				add("/v1/advise", mapd.AdviseRequest{
					Machine:    m,
					Nodes:      4 + 4*i,
					Collective: coll,
					CommSize:   16,
					Bytes:      int64(1) << (20 + uint(i)%4),
				})
			}
		}
	}
	return shots
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8077", "base URL of mrserved")
	conc := flag.Int("c", 64, "concurrent closed-loop workers")
	dur := flag.Duration("d", 10*time.Second, "measurement duration")
	warmup := flag.Duration("warmup", 1*time.Second, "cache warm-up duration (not measured)")
	spread := flag.Int("spread", 4, "distinct advise scenarios per machine×collective")
	flag.Parse()

	shots := workload(*spread)
	transport := &http.Transport{
		MaxIdleConns:        *conc * 2,
		MaxIdleConnsPerHost: *conc * 2,
	}
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}

	run := func(d time.Duration, measure bool) (int64, int64, []time.Duration) {
		var (
			wg        sync.WaitGroup
			mu        sync.Mutex
			total     int64
			errs      int64
			latencies []time.Duration
		)
		deadline := time.Now().Add(d)
		for w := 0; w < *conc; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				var mine []time.Duration
				var n, bad int64
				for time.Now().Before(deadline) {
					s := shots[rng.Intn(len(shots))]
					start := time.Now()
					resp, err := client.Post(*url+s.endpoint, "application/json", bytes.NewReader(s.body))
					elapsed := time.Since(start)
					if err != nil {
						bad++
						continue
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						bad++
						continue
					}
					n++
					if measure {
						mine = append(mine, elapsed)
					}
				}
				mu.Lock()
				total += n
				errs += bad
				latencies = append(latencies, mine...)
				mu.Unlock()
			}(int64(w) + 1)
		}
		wg.Wait()
		return total, errs, latencies
	}

	if *warmup > 0 {
		if _, errs, _ := run(*warmup, false); errs > 0 {
			fmt.Fprintf(os.Stderr, "mrload: %d errors during warm-up — is mrserved running at %s?\n", errs, *url)
			os.Exit(1)
		}
	}
	total, errs, latencies := run(*dur, true)
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })

	elapsed := dur.Seconds()
	fmt.Printf("mrload: %d requests in %s with %d workers over %d request shapes\n",
		total, *dur, *conc, len(shots))
	fmt.Printf("  throughput  %10.0f req/s\n", float64(total)/elapsed)
	fmt.Printf("  errors      %10d\n", errs)
	if len(latencies) > 0 {
		fmt.Printf("  latency p50 %10s\n", percentile(latencies, 0.50))
		fmt.Printf("  latency p90 %10s\n", percentile(latencies, 0.90))
		fmt.Printf("  latency p99 %10s\n", percentile(latencies, 0.99))
		fmt.Printf("  latency max %10s\n", latencies[len(latencies)-1])
	}
	if errs > 0 {
		os.Exit(1)
	}
}
