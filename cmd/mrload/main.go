// Command mrload is a closed-loop load generator for mrserved: a fixed
// number of workers each keep exactly one request in flight against a
// mixed workload spanning all the query endpoints, then report goodput
// and latency percentiles. It is the measurable baseline for the serving
// path, and doubles as the degraded-mode probe: failed attempts are
// classified (shed 503s, other 5xx, 4xx, transport errors) and retried
// with capped exponential backoff plus jitter, honouring Retry-After.
//
// Usage:
//
//	mrserved &
//	mrload -url http://127.0.0.1:8077 -c 64 -d 10s
//	mrload -retries 5 -backoff 5ms -maxbackoff 500ms   # overload runs
//
// The workload mixes distinct request shapes (different hierarchies,
// orders, ranks, machines, collectives), so after a warm-up pass the
// daemon serves from its result cache — the steady state the service is
// designed for. Use -spread to multiply the number of distinct advise
// scenarios and exercise the evaluation path instead.
//
// -skew draws requests from a Zipf (power-law) distribution over the
// shot pool instead of uniformly, so a handful of shapes dominate — the
// realistic mix that exercises mapd's top-K workload analytics. -json
// replaces the human report with a machine-readable summary for
// experiment scripts; adding -stitched <file> resolves each latency
// bucket's exemplar trace id through a stitched gate+replica trace
// (mrtrace -stitch) into a gate_ms/server_ms split, so a slow bucket
// says at a glance whether the gate or the replica ate the time.
//
// Exit status is 1 only when not a single request succeeded; a degraded
// run with nonzero goodput exits 0 so overload experiments can record it.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/commmatrix"
	"repro/internal/fleet"
	"repro/internal/mapd"
	"repro/internal/obs"
	"repro/internal/obs/rt"
	"repro/internal/procmap"
)

type shot struct {
	endpoint string
	body     []byte
}

// workload builds the pool of request bodies the workers cycle through.
func workload(spread int) []shot {
	var shots []shot
	add := func(endpoint string, v any) {
		b, err := json.Marshal(v)
		if err != nil {
			panic(err)
		}
		shots = append(shots, shot{endpoint: endpoint, body: b})
	}
	hiers := []string{"2,2,4", "2,4,2,8", "16,2,2,8", "4,2,2,2,4"}
	orders := map[string][]string{
		"2,2,4":     {"", "0-1-2", "2-1-0", "1-2-0"},
		"2,4,2,8":   {"", "3-2-1-0", "0-1-2-3", "2-1-0-3"},
		"16,2,2,8":  {"", "3-2-1-0", "0-3-2-1"},
		"4,2,2,2,4": {"", "4-3-2-1-0", "0-1-2-3-4"},
	}
	for _, h := range hiers {
		for _, o := range orders[h] {
			for _, r := range []int{0, 5, 13} {
				rank := r
				add("/v1/map", mapd.MapRequest{Hierarchy: h, Order: o, Rank: &rank})
			}
			add("/v1/map", mapd.MapRequest{Hierarchy: h, Order: o, Table: true})
			add("/v1/metrics/order", mapd.OrderMetricsRequest{Hierarchy: h, Order: o})
			add("/v1/select", mapd.SelectRequest{Hierarchy: h, Order: o, N: 8})
		}
	}
	// Matrix-aware placement shots: small synthetic workloads so one
	// request stays cheap, with two seeds per matrix for distinct keys.
	matrices := []struct {
		hier string
		gen  func() (*commmatrix.Matrix, error)
	}{
		{"2,4,4", func() (*commmatrix.Matrix, error) { return procmap.Halo(4, 8, 1024) }},
		{"2,2,8", func() (*commmatrix.Matrix, error) { return procmap.Halo(8, 4, 4096) }},
		{"2,2,4", func() (*commmatrix.Matrix, error) {
			return procmap.GridLayers([3]int{2, 2, 4}, [3]float64{10, 1000, 10})
		}},
	}
	for _, mw := range matrices {
		m, err := mw.gen()
		if err != nil {
			panic(err)
		}
		for _, seed := range []int64{0, 1} {
			add("/v1/map/matrix", mapd.MatrixMapRequest{
				Hierarchy: mw.hier,
				Matrix:    m.Sparse(),
				Seed:      seed,
			})
		}
	}
	for i := 0; i < spread; i++ {
		for _, m := range []string{"hydra", "lumi"} {
			for _, coll := range []string{"alltoall", "allgather", "allreduce"} {
				add("/v1/advise", mapd.AdviseRequest{
					Machine:    m,
					Nodes:      4 + 4*i,
					Collective: coll,
					CommSize:   16,
					Bytes:      int64(1) << (20 + uint(i)%4),
				})
			}
		}
	}
	return shots
}

// retryPolicy tunes the client-side retry loop.
type retryPolicy struct {
	retries    int           // retry attempts after the first try
	backoff    time.Duration // base delay, doubled per attempt
	maxBackoff time.Duration // delay cap
	sleep      func(time.Duration)
}

// delay computes the capped exponential backoff with full jitter for the
// given zero-based attempt, raised to at least the server's Retry-After
// hint when one was sent.
func (p retryPolicy) delay(attempt int, retryAfter time.Duration, rng *rand.Rand) time.Duration {
	d := p.backoff << uint(attempt)
	if d > p.maxBackoff || d <= 0 {
		d = p.maxBackoff
	}
	// Full jitter in [d/2, d): staggers synchronized retry herds.
	d = d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// targetStats is the per-target slice of a run: which replica (by its
// x-mr-replica attribution, falling back to the target URL) absorbed how
// much of the traffic, with what latency. In fleet mode this is what
// shows a kill: the dead replica's share goes to zero and the survivors'
// goodput absorbs it.
type targetStats struct {
	ok        int64
	attempts  int64
	shed      int64
	serverErr int64
	transport int64
	latencies []time.Duration
}

// tallyFunc hands doShot the per-target accumulator for a label; nil
// disables per-target tracking (warm-up).
type tallyFunc func(label string) *targetStats

// outcome tallies what happened to one logical request (including all its
// retry attempts).
type outcome struct {
	ok        bool
	attempts  int64 // HTTP attempts made
	shed      int64 // 503 responses (load shedding / draining)
	serverErr int64 // other 5xx responses
	clientErr int64 // 4xx responses (never retried)
	transport int64 // connection-level failures
	gaveUp    bool  // retries exhausted without a success
	latency   time.Duration
	traceID   string // trace of the successful attempt, for exemplars
}

// doShot issues one logical request, retrying shed/5xx/transport failures
// per the policy. 4xx responses are the caller's fault and never retried.
// In fleet mode (several targets) retries rotate to the next target, so a
// dead replica costs one attempt, not the whole logical request. A
// non-empty traceparent is injected on every attempt; the outcome's
// traceID is taken from the response's traceparent header (the server
// announces its span there whether or not one was injected). tally, when
// non-nil, receives per-target accounting: responses are attributed to
// the replica named by x-mr-replica (so stats follow the serving process
// even through a routing tier), transport failures to the target URL.
func doShot(client *http.Client, targets []string, first int, s shot, p retryPolicy, rng *rand.Rand, traceparent string, tally tallyFunc) outcome {
	var out outcome
	for attempt := 0; ; attempt++ {
		out.attempts++
		base := targets[(first+attempt)%len(targets)]
		start := time.Now()
		req, err := http.NewRequest(http.MethodPost, base+s.endpoint, bytes.NewReader(s.body))
		if err != nil {
			panic(err) // static URL + endpoint: unreachable
		}
		req.Header.Set("Content-Type", "application/json")
		if traceparent != "" {
			req.Header.Set("traceparent", traceparent)
		}
		resp, err := client.Do(req)
		var retryAfter time.Duration
		if err != nil {
			out.transport++
			if tally != nil {
				t := tally(base)
				t.attempts++
				t.transport++
			}
		} else {
			label := resp.Header.Get("x-mr-replica")
			if label == "" {
				label = base
			}
			var t *targetStats
			if tally != nil {
				t = tally(label)
				t.attempts++
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				out.ok = true
				out.latency = time.Since(start)
				if tid, _, _, ok := rt.ParseTraceparent(resp.Header.Get("traceparent")); ok {
					out.traceID = tid.String()
				}
				if t != nil {
					t.ok++
					t.latencies = append(t.latencies, out.latency)
				}
				return out
			case resp.StatusCode == http.StatusServiceUnavailable:
				out.shed++
				if t != nil {
					t.shed++
				}
				if d, ok := fleet.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
					retryAfter = d
				}
			case resp.StatusCode >= 500:
				out.serverErr++
				if t != nil {
					t.serverErr++
				}
			default:
				out.clientErr++
				return out
			}
		}
		if attempt >= p.retries {
			out.gaveUp = true
			return out
		}
		p.sleep(p.delay(attempt, retryAfter, rng))
	}
}

// exemplarBucket is one latency bucket carrying an example trace id — the
// slowest successful request that landed in the bucket — so a percentile
// regression drills straight down to one concrete server-side trace.
type exemplarBucket struct {
	le          time.Duration // inclusive upper bound; 0 means +Inf
	count       int64
	exemplarID  string
	exemplarLat time.Duration
}

// exemplarBounds are the latency bucket edges of the report histogram.
var exemplarBounds = []time.Duration{
	time.Millisecond, 2500 * time.Microsecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, time.Second,
}

func newExemplarBuckets() []exemplarBucket {
	bs := make([]exemplarBucket, len(exemplarBounds)+1)
	for i, le := range exemplarBounds {
		bs[i].le = le
	}
	return bs // last bucket keeps le == 0: +Inf
}

// observe files one successful latency, keeping the slowest sample seen
// in the bucket as its exemplar.
func observe(bs []exemplarBucket, lat time.Duration, traceID string) {
	i := sort.Search(len(exemplarBounds), func(i int) bool { return lat <= exemplarBounds[i] })
	b := &bs[i]
	b.count++
	if traceID != "" && (b.exemplarID == "" || lat > b.exemplarLat) {
		b.exemplarID, b.exemplarLat = traceID, lat
	}
}

func mergeBuckets(dst, src []exemplarBucket) {
	for i := range dst {
		dst[i].count += src[i].count
		if src[i].exemplarID != "" && (dst[i].exemplarID == "" || src[i].exemplarLat > dst[i].exemplarLat) {
			dst[i].exemplarID, dst[i].exemplarLat = src[i].exemplarID, src[i].exemplarLat
		}
	}
}

// totals aggregates outcomes across all workers of one run.
type totals struct {
	ok, attempts, retries      int64
	shed, serverErr, clientErr int64
	transport, gaveUp          int64
	latencies                  []time.Duration
	buckets                    []exemplarBucket
	perTarget                  map[string]*targetStats
}

// tally returns the accumulator for one target label, creating it on
// first sight. Worker-local, so no locking.
func (t *totals) tally(label string) *targetStats {
	if t.perTarget == nil {
		t.perTarget = make(map[string]*targetStats)
	}
	ts := t.perTarget[label]
	if ts == nil {
		ts = &targetStats{}
		t.perTarget[label] = ts
	}
	return ts
}

func (t *totals) add(o outcome, measure bool) {
	if o.ok {
		t.ok++
		if measure {
			t.latencies = append(t.latencies, o.latency)
			if t.buckets == nil {
				t.buckets = newExemplarBuckets()
			}
			observe(t.buckets, o.latency, o.traceID)
		}
	}
	t.attempts += o.attempts
	t.retries += o.attempts - 1
	t.shed += o.shed
	t.serverErr += o.serverErr
	t.clientErr += o.clientErr
	t.transport += o.transport
	if o.gaveUp {
		t.gaveUp++
	}
}

func (t *totals) merge(w totals) {
	t.ok += w.ok
	t.attempts += w.attempts
	t.retries += w.retries
	t.shed += w.shed
	t.serverErr += w.serverErr
	t.clientErr += w.clientErr
	t.transport += w.transport
	t.gaveUp += w.gaveUp
	t.latencies = append(t.latencies, w.latencies...)
	if w.buckets != nil {
		if t.buckets == nil {
			t.buckets = newExemplarBuckets()
		}
		mergeBuckets(t.buckets, w.buckets)
	}
	for label, ws := range w.perTarget {
		ts := t.tally(label)
		ts.ok += ws.ok
		ts.attempts += ws.attempts
		ts.shed += ws.shed
		ts.serverErr += ws.serverErr
		ts.transport += ws.transport
		ts.latencies = append(ts.latencies, ws.latencies...)
	}
}

// printBuckets renders the exemplar histogram: one line per non-empty
// bucket, with the example trace id when the server sent one.
func printBuckets(w io.Writer, bs []exemplarBucket) {
	fmt.Fprintf(w, "  latency histogram (exemplar = slowest trace in bucket):\n")
	for _, b := range bs {
		if b.count == 0 {
			continue
		}
		le := "+Inf"
		if b.le > 0 {
			le = b.le.String()
		}
		line := fmt.Sprintf("    ≤ %-8s %8d", le, b.count)
		if b.exemplarID != "" {
			line += fmt.Sprintf("   e.g. trace %s @ %s", b.exemplarID, b.exemplarLat)
		}
		fmt.Fprintln(w, line)
	}
}

// sampler picks shot indices. With skew <= 0 it is uniform; otherwise it
// draws from a Zipf distribution with exponent skew over the pool, so
// index i is picked proportionally to 1/(i+1)^skew — a few shapes
// dominate, as real traffic does.
type sampler struct {
	n   int
	cum []float64 // cumulative Zipf weights; nil means uniform
}

func newSampler(n int, skew float64) *sampler {
	s := &sampler{n: n}
	if skew <= 0 {
		return s
	}
	s.cum = make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), skew)
		s.cum[i] = total
	}
	return s
}

func (s *sampler) pick(rng *rand.Rand) int {
	if s.cum == nil {
		return rng.Intn(s.n)
	}
	u := rng.Float64() * s.cum[s.n-1]
	return sort.SearchFloat64s(s.cum, u)
}

// report is the -json summary: everything the human output prints, as
// one object an experiment script can parse.
type report struct {
	OK        int64 `json:"ok"`
	Attempts  int64 `json:"attempts"`
	Retries   int64 `json:"retries"`
	Shed      int64 `json:"shed_503"`
	ServerErr int64 `json:"other_5xx"`
	ClientErr int64 `json:"client_4xx"`
	Transport int64 `json:"transport_errors"`
	GaveUp    int64 `json:"gave_up"`

	DurationSeconds float64 `json:"duration_seconds"`
	Workers         int     `json:"workers"`
	Shapes          int     `json:"shapes"`
	Skew            float64 `json:"skew"`

	GoodputReqS float64 `json:"goodput_req_s"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
	MaxMs       float64 `json:"max_ms"`

	Buckets []bucketReport `json:"latency_buckets,omitempty"`
	Targets []targetReport `json:"targets,omitempty"`
}

// targetReport is one target's (or, through a routing tier, one serving
// replica's) slice of the run.
type targetReport struct {
	Target      string  `json:"target"`
	OK          int64   `json:"ok"`
	Attempts    int64   `json:"attempts"`
	Shed        int64   `json:"shed_503"`
	ServerErr   int64   `json:"other_5xx"`
	Transport   int64   `json:"transport_errors"`
	GoodputReqS float64 `json:"goodput_req_s"`
	P50Ms       float64 `json:"p50_ms"`
	P90Ms       float64 `json:"p90_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

type bucketReport struct {
	LeMs          float64 `json:"le_ms"` // 0 means +Inf
	Count         int64   `json:"count"`
	ExemplarTrace string  `json:"exemplar_trace,omitempty"`
	ExemplarMs    float64 `json:"exemplar_ms,omitempty"`
	// GateMs/ServerMs split the exemplar's latency between the routing
	// tier and the serving replica, resolved from a stitched trace export
	// (-stitched); absent without one.
	GateMs   float64 `json:"gate_ms,omitempty"`
	ServerMs float64 `json:"server_ms,omitempty"`
}

// resolveBucketSplit annotates each bucket's exemplar with its gate-vs-
// server latency split, read from a stitched trace scope (mrtrace
// -stitch output): on the exemplar's "trace <id>" tracks, gate_ms is the
// longest "gate "-prefixed span (the mrgate route root) and server_ms
// the longest "http "-prefixed one (the mrserved request root). Scope
// times are seconds; exemplars whose trace is not in the scope (not
// head-sampled, or the file predates the run) stay unannotated.
func resolveBucketSplit(buckets []bucketReport, sc *obs.Scope) {
	for i := range buckets {
		id := buckets[i].ExemplarTrace
		if id == "" {
			continue
		}
		var gate, server float64
		for _, sp := range sc.Spans() {
			if sc.ThreadName(sp.PID, sp.TID) != "trace "+id {
				continue
			}
			d := (sp.End - sp.Start) * 1e3
			switch {
			case strings.HasPrefix(sp.Name, "gate "):
				if d > gate {
					gate = d
				}
			case strings.HasPrefix(sp.Name, "http "):
				if d > server {
					server = d
				}
			}
		}
		buckets[i].GateMs, buckets[i].ServerMs = gate, server
	}
}

// buildReport folds run totals into the -json summary. latencies must be
// sorted ascending.
func buildReport(t totals, d time.Duration, workers, shapes int, skew float64) report {
	r := report{
		OK: t.ok, Attempts: t.attempts, Retries: t.retries,
		Shed: t.shed, ServerErr: t.serverErr, ClientErr: t.clientErr,
		Transport: t.transport, GaveUp: t.gaveUp,
		DurationSeconds: d.Seconds(), Workers: workers, Shapes: shapes, Skew: skew,
	}
	if r.DurationSeconds > 0 {
		r.GoodputReqS = float64(t.ok) / r.DurationSeconds
	}
	if len(t.latencies) > 0 {
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		r.P50Ms = ms(percentile(t.latencies, 0.50))
		r.P90Ms = ms(percentile(t.latencies, 0.90))
		r.P99Ms = ms(percentile(t.latencies, 0.99))
		r.MaxMs = ms(t.latencies[len(t.latencies)-1])
	}
	for _, b := range t.buckets {
		if b.count == 0 {
			continue
		}
		r.Buckets = append(r.Buckets, bucketReport{
			LeMs:          float64(b.le) / float64(time.Millisecond),
			Count:         b.count,
			ExemplarTrace: b.exemplarID,
			ExemplarMs:    float64(b.exemplarLat) / float64(time.Millisecond),
		})
	}
	r.Targets = targetReports(t.perTarget, d)
	return r
}

// targetReports folds the per-target accumulators into sorted report
// rows (latencies are sorted in place to take percentiles).
func targetReports(perTarget map[string]*targetStats, d time.Duration) []targetReport {
	if len(perTarget) == 0 {
		return nil
	}
	labels := make([]string, 0, len(perTarget))
	for label := range perTarget {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	out := make([]targetReport, 0, len(labels))
	for _, label := range labels {
		ts := perTarget[label]
		tr := targetReport{
			Target: label, OK: ts.ok, Attempts: ts.attempts,
			Shed: ts.shed, ServerErr: ts.serverErr, Transport: ts.transport,
		}
		if d > 0 {
			tr.GoodputReqS = float64(ts.ok) / d.Seconds()
		}
		if len(ts.latencies) > 0 {
			sort.Slice(ts.latencies, func(i, j int) bool { return ts.latencies[i] < ts.latencies[j] })
			tr.P50Ms = ms(percentile(ts.latencies, 0.50))
			tr.P90Ms = ms(percentile(ts.latencies, 0.90))
			tr.P99Ms = ms(percentile(ts.latencies, 0.99))
		}
		out = append(out, tr)
	}
	return out
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8077", "base URL of mrserved (or mrgate)")
	targetsFlag := flag.String("targets", "",
		"fleet mode: comma-separated base URLs; requests round-robin across them and retries rotate to the next target")
	conc := flag.Int("c", 64, "concurrent closed-loop workers")
	dur := flag.Duration("d", 10*time.Second, "measurement duration")
	warmup := flag.Duration("warmup", 1*time.Second, "cache warm-up duration (not measured)")
	spread := flag.Int("spread", 4, "distinct advise scenarios per machine×collective")
	retries := flag.Int("retries", 3, "retry attempts per request for 5xx/transport failures")
	backoff := flag.Duration("backoff", 10*time.Millisecond, "base retry backoff (doubles per attempt, with jitter)")
	maxBackoff := flag.Duration("maxbackoff", 1*time.Second, "retry backoff cap")
	traceparent := flag.String("traceparent", "",
		`traceparent injection: empty = none, "auto" = fresh sampled trace per request, else sent verbatim`)
	skew := flag.Float64("skew", 0, "Zipf exponent for the shot mix (0 = uniform; 1.2 ≈ real-traffic skew)")
	jsonOut := flag.Bool("json", false, "print a machine-readable JSON summary instead of the human report")
	stitched := flag.String("stitched", "",
		"stitched trace export (mrtrace -stitch) to resolve -json bucket exemplars into gate_ms/server_ms splits")
	resolve := flag.String("resolve", "",
		"post-process: annotate a previously written -json report via -stitched and print it, without generating load")
	flag.Parse()

	// Offline drill-down: the fleet's trace exports are only written on
	// drain, after a live run's report — so the split resolution is also
	// available as a post-processing pass over a saved report.
	if *resolve != "" {
		if *stitched == "" {
			fmt.Fprintln(os.Stderr, "mrload: -resolve needs -stitched")
			os.Exit(2)
		}
		b, err := os.ReadFile(*resolve)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrload:", err)
			os.Exit(1)
		}
		var r report
		if err := json.Unmarshal(b, &r); err != nil {
			fmt.Fprintln(os.Stderr, "mrload:", err)
			os.Exit(1)
		}
		sc, err := obs.ReadTraceFile(*stitched)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrload:", err)
			os.Exit(1)
		}
		resolveBucketSplit(r.Buckets, sc)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(os.Stderr, "mrload:", err)
			os.Exit(1)
		}
		return
	}

	targets := []string{*url}
	if *targetsFlag != "" {
		targets = targets[:0]
		for _, u := range strings.Split(*targetsFlag, ",") {
			if u = strings.TrimSpace(u); u != "" {
				targets = append(targets, u)
			}
		}
		if len(targets) == 0 {
			fmt.Fprintln(os.Stderr, "mrload: -targets is empty")
			os.Exit(1)
		}
	}

	shots := workload(*spread)
	smp := newSampler(len(shots), *skew)
	transport := &http.Transport{
		MaxIdleConns:        *conc * 2,
		MaxIdleConnsPerHost: *conc * 2,
	}
	client := &http.Client{Transport: transport, Timeout: 30 * time.Second}
	policy := retryPolicy{retries: *retries, backoff: *backoff, maxBackoff: *maxBackoff, sleep: time.Sleep}

	run := func(d time.Duration, measure bool) totals {
		var (
			wg  sync.WaitGroup
			mu  sync.Mutex
			all totals
		)
		deadline := time.Now().Add(d)
		for w := 0; w < *conc; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				var mine totals
				var tally tallyFunc
				if measure {
					tally = mine.tally
				}
				for i := 0; time.Now().Before(deadline); i++ {
					s := shots[smp.pick(rng)]
					tp := *traceparent
					if tp == "auto" {
						tp, _ = rt.ClientTraceparent(rng)
					}
					// Round-robin the first attempt across targets; retries
					// continue the rotation inside doShot.
					mine.add(doShot(client, targets, int(seed)+i, s, policy, rng, tp, tally), measure)
				}
				mu.Lock()
				all.merge(mine)
				mu.Unlock()
			}(int64(w) + 1)
		}
		wg.Wait()
		return all
	}

	if *warmup > 0 {
		wt := run(*warmup, false)
		if wt.ok == 0 {
			fmt.Fprintf(os.Stderr, "mrload: no request succeeded during warm-up — is anything running at %s?\n",
				strings.Join(targets, ", "))
			os.Exit(1)
		}
	}
	t := run(*dur, true)
	sort.Slice(t.latencies, func(i, j int) bool { return t.latencies[i] < t.latencies[j] })

	if *jsonOut {
		r := buildReport(t, *dur, *conc, len(shots), *skew)
		if *stitched != "" {
			sc, err := obs.ReadTraceFile(*stitched)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mrload:", err)
				os.Exit(1)
			}
			resolveBucketSplit(r.Buckets, sc)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintln(os.Stderr, "mrload:", err)
			os.Exit(1)
		}
		if t.ok == 0 {
			os.Exit(1)
		}
		return
	}

	elapsed := dur.Seconds()
	fmt.Printf("mrload: %d ok of %d attempts in %s with %d workers over %d request shapes\n",
		t.ok, t.attempts, *dur, *conc, len(shots))
	fmt.Printf("  goodput     %10.0f req/s (successful requests only)\n", float64(t.ok)/elapsed)
	fmt.Printf("  retries     %10d\n", t.retries)
	fmt.Printf("  shed 503    %10d\n", t.shed)
	fmt.Printf("  other 5xx   %10d\n", t.serverErr)
	fmt.Printf("  4xx         %10d\n", t.clientErr)
	fmt.Printf("  transport   %10d\n", t.transport)
	fmt.Printf("  gave up     %10d\n", t.gaveUp)
	if len(t.latencies) > 0 {
		fmt.Printf("  latency p50 %10s\n", percentile(t.latencies, 0.50))
		fmt.Printf("  latency p90 %10s\n", percentile(t.latencies, 0.90))
		fmt.Printf("  latency p99 %10s\n", percentile(t.latencies, 0.99))
		fmt.Printf("  latency max %10s\n", t.latencies[len(t.latencies)-1])
	}
	if t.buckets != nil {
		printBuckets(os.Stdout, t.buckets)
	}
	if len(t.perTarget) > 1 || len(targets) > 1 {
		fmt.Printf("  per target (by x-mr-replica attribution):\n")
		for _, tr := range targetReports(t.perTarget, *dur) {
			fmt.Printf("    %-28s %8d ok %10.0f req/s  p50 %7.2fms p99 %7.2fms  shed %d  5xx %d  transport %d\n",
				tr.Target, tr.OK, tr.GoodputReqS, tr.P50Ms, tr.P99Ms, tr.Shed, tr.ServerErr, tr.Transport)
		}
	}
	if t.ok == 0 {
		os.Exit(1)
	}
}
