// Command mrbench regenerates the collective micro-benchmarks of the
// paper's Figures 3–7 on the simulated Hydra and LUMI clusters: it
// reorders ranks with each legend order, splits the world into
// subcommunicators, and measures the collective's bandwidth with one and
// with all communicators running (§4.1's protocol).
//
// Usage:
//
//	mrbench -fig 3                  # one figure at paper scale
//	mrbench -fig 0 -maxsize 8MB     # all figures, truncated size sweep
//	mrbench -legend                 # only print the legend metrics
//	mrbench -classes                # order-search equivalence-class stats
//	mrbench -fig 3 -maxsize 1MB -faults "straggle:rank=3,factor=4"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/advisor"
	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/figures"
	"repro/internal/obs"
	"repro/internal/study"
)

func main() {
	fig := flag.Int("fig", 0, "figure to run (3-7); 0 runs all")
	maxSize := flag.String("maxsize", "512MB", "largest total data size of the sweep")
	iters := flag.Int("iters", 2, "timed iterations per measurement")
	legend := flag.Bool("legend", false, "print only the figure-legend metrics")
	classes := flag.Bool("classes", false, "print the §3.3 equivalence-class statistics of the advisor's pruned order search for each figure scenario")
	csvDir := flag.String("csv", "", "also write figureN.csv files into this directory")
	studyFlag := flag.Bool("study", false, "run the order study (all 24 orders of Figure 3's setup, metric↔bandwidth correlations)")
	studySize := flag.String("studysize", "16MB", "total collective size for -study")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file")
	metricsOut := flag.String("metrics", "", "write Prometheus text metrics of the run to this file")
	faults := flag.String("faults", "", "deterministic fault plan (DSL or JSON, see internal/fault) injected into every run")
	faultSeed := flag.Int64("faultseed", 0, "override the fault plan's seed (for chaos events)")
	flag.Parse()

	var plan *fault.Plan
	if *faults != "" {
		var err error
		plan, err = fault.Parse(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrbench:", err)
			os.Exit(2)
		}
		if *faultSeed != 0 {
			plan.Seed = *faultSeed
		}
		fmt.Printf("fault plan %q (hash %s)\n", plan.String(), plan.Hash())
	}

	var sc *obs.Scope
	if *traceOut != "" || *metricsOut != "" {
		sc = obs.New(obs.Options{})
	}
	writeArtifacts := func() {
		if *traceOut != "" {
			if err := obs.WriteTraceFile(*traceOut, sc); err != nil {
				fmt.Fprintln(os.Stderr, "mrbench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *traceOut)
		}
		if *metricsOut != "" {
			if err := obs.WritePrometheusFile(*metricsOut, sc.Registry()); err != nil {
				fmt.Fprintln(os.Stderr, "mrbench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *metricsOut)
		}
	}

	if *legend {
		fmt.Print(figures.LegendCharacterizations())
		return
	}
	if *classes {
		if err := printSearchClasses(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mrbench:", err)
			os.Exit(1)
		}
		return
	}
	if *studyFlag {
		size, err := parseSize(*studySize)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrbench:", err)
			os.Exit(2)
		}
		cfg := figures.Figure3(nil).Config
		cfg.Iters = *iters
		cfg.MPI.Obs = sc
		cfg.MPI.Faults = plan
		res, err := study.Run(cfg, size)
		if err != nil {
			reportRunError(err)
		}
		fmt.Print(res.Render())
		writeArtifacts()
		return
	}
	limit, err := parseSize(*maxSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrbench:", err)
		os.Exit(2)
	}
	var sizes []int64
	for _, s := range bench.Sizes16KBto512MB() {
		if s <= limit {
			sizes = append(sizes, s)
		}
	}
	if len(sizes) == 0 {
		fmt.Fprintln(os.Stderr, "mrbench: size limit below 16KB")
		os.Exit(2)
	}
	all := figures.MicroBenches(sizes)
	var figs []int
	if *fig == 0 {
		for f := range all {
			figs = append(figs, f)
		}
		sort.Ints(figs)
	} else {
		if _, ok := all[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "mrbench: no figure %d (have 3-7)\n", *fig)
			os.Exit(2)
		}
		figs = []int{*fig}
	}
	for _, f := range figs {
		mb := all[f]
		mb.Config.Iters = *iters
		mb.Config.MPI.Obs = sc
		mb.Config.MPI.Faults = plan
		series, err := bench.Run(mb.Config)
		if err != nil {
			reportRunError(err)
		}
		fmt.Println(figures.RenderSeries(mb, series))
		if *csvDir != "" {
			data, err := figures.SeriesCSV(mb, series)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mrbench:", err)
				os.Exit(1)
			}
			path := fmt.Sprintf("%s/figure%d.csv", *csvDir, f)
			if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "mrbench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	writeArtifacts()
}

// reportRunError distinguishes a benchmark aborted by an injected kill
// (the typed rank-lost error, expected under crash plans) from genuine
// failures, then exits nonzero.
func reportRunError(err error) {
	if errors.Is(err, fault.ErrRankLost) {
		fmt.Fprintln(os.Stderr, "mrbench: benchmark aborted by injected fault:", err)
	} else {
		fmt.Fprintln(os.Stderr, "mrbench:", err)
	}
	os.Exit(1)
}

func parseSize(s string) (int64, error) {
	t := strings.ToUpper(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "GB"):
		mult, t = 1<<30, strings.TrimSuffix(t, "GB")
	case strings.HasSuffix(t, "MB"):
		mult, t = 1<<20, strings.TrimSuffix(t, "MB")
	case strings.HasSuffix(t, "KB"):
		mult, t = 1<<10, strings.TrimSuffix(t, "KB")
	case strings.HasSuffix(t, "B"):
		t = strings.TrimSuffix(t, "B")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}

// printSearchClasses runs the advisor's pruned order search once per
// figure scenario (one communicator and all communicators) and reports
// how far the §3.3 equivalence classes collapse the k! candidates, read
// back from the advisor_class_* counters the search records.
func printSearchClasses(w io.Writer) error {
	figs := []figures.MicroBench{
		figures.Figure3(nil), figures.Figure4(nil), figures.Figure5(nil),
		figures.Figure6(nil), figures.Figure7(nil),
	}
	for _, mb := range figs {
		for _, sim := range []bool{false, true} {
			reg := obs.NewRegistry()
			sc := advisor.Scenario{
				Spec:         mb.Config.Spec,
				Hierarchy:    mb.Config.Hierarchy,
				Coll:         advisor.Collective(mb.Config.Coll),
				CommSize:     mb.Config.CommSize,
				Simultaneous: sim,
				Bytes:        4 << 20,
			}
			if _, err := advisor.Rank(context.Background(), sc, nil, advisor.RankOptions{Registry: reg}); err != nil {
				return fmt.Errorf("%s: %w", mb.Name, err)
			}
			nClasses := int(reg.SumCounters("advisor_class_misses_total"))
			total := nClasses + int(reg.SumCounters("advisor_class_hits_total"))
			mode := "one comm "
			if sim {
				mode = "all comms"
			}
			fmt.Fprintf(w, "%s %s (%s, comm %d): %d orders -> %d classes (%.0f%% pruned)\n",
				mb.Name, mode, mb.Config.Coll, mb.Config.CommSize, total, nClasses,
				100*float64(total-nClasses)/float64(total))
		}
	}
	return nil
}
