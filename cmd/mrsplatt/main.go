// Command mrsplatt regenerates Figure 8: the Splatt CPD duration on the
// simulated Hydra cluster under every rank-reordering order, with one or
// two NICs per node, plus the mpisee-style per-communicator profile and
// the CPD↔Alltoallv correlation of §4.2.
//
// Usage:
//
//	mrsplatt                 # both NIC configurations, all 24 orders
//	mrsplatt -nics 1         # Figure 8a only
//	mrsplatt -nodes 8        # scaled-down cluster (grid shrinks to match)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
	"repro/internal/perm"
	"repro/internal/tensor"
	"repro/internal/trace"
)

func main() {
	nodes := flag.Int("nodes", 32, "Hydra nodes (32 ranks each)")
	nics := flag.Int("nics", 0, "NICs per node (1 or 2; 0 runs both)")
	iters := flag.Int("iters", 2, "CPD ALS iterations")
	nnz := flag.Int("nnz", 4_000_000, "synthetic tensor nonzeros")
	flag.Parse()

	ranks := *nodes * 32
	if ranks%16 != 0 || ranks < 64 {
		fmt.Fprintln(os.Stderr, "mrsplatt: need at least 2 nodes")
		os.Exit(2)
	}
	grid := tensor.Grid{ranks / 16, 4, 4}
	ten := tensor.SyntheticNell([3]int{1600 * ranks, 8 * ranks, 8 * ranks}, *nnz, 1001)

	nicList := []int{1, 2}
	if *nics != 0 {
		nicList = []int{*nics}
	}
	for _, nic := range nicList {
		cfg := figures.Figure8Config{
			Nodes:  *nodes,
			NICs:   nic,
			Orders: perm.All(4),
			Tensor: ten,
			Grid:   grid,
			Iters:  *iters,
		}
		results, err := figures.RunFigure8(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrsplatt:", err)
			os.Exit(1)
		}
		fmt.Println(figures.RenderFigure8(cfg, results))
		var durations, a16 []float64
		for _, r := range results {
			durations = append(durations, r.Duration)
			a16 = append(a16, r.Alltoall16)
		}
		fmt.Printf("Pearson correlation CPD duration vs Alltoallv@16: %.2f\n\n",
			trace.Pearson(durations, a16))
	}
}
