// The advise, procsets, and detect subcommands: the §5 extensions
// (prediction, MPI-sessions-style process sets, hwloc-style detection).

package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/advisor"
	"repro/internal/cluster"
	"repro/internal/hwdetect"
	"repro/internal/mapd"
	"repro/internal/netmodel"
	"repro/internal/perm"
	"repro/internal/procset"
	"repro/internal/topology"
)

func cmdAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ExitOnError)
	machine := fs.String("machine", "hydra", "machine model: hydra, lumi, or cloud")
	nodes := fs.Int("nodes", 16, "number of compute nodes (hydra/lumi)")
	depth := fs.Int("depth", 0, "cloud hierarchy depth 6..12 (cloud only; 0 = default 10)")
	coll := fs.String("coll", "alltoall", "collective: alltoall, allgather, allreduce")
	comm := fs.Int("comm", 16, "subcommunicator size")
	size := fs.Int64("size", 16<<20, "total collective size in bytes")
	simultaneous := fs.Bool("all", true, "all subcommunicators run simultaneously")
	top := fs.Int("top", 5, "how many recommendations to print")
	threshold := fs.Int("search-threshold", 0,
		"largest depth searched exhaustively; deeper uses branch-and-bound/beam (0 = default 7)")
	asJSON := fs.Bool("json", false, "emit the service's canonical /v1/advise response")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asJSON {
		req := mapd.AdviseRequest{
			Machine:      *machine,
			Collective:   *coll,
			CommSize:     *comm,
			Bytes:        *size,
			Simultaneous: *simultaneous,
			Top:          *top,
		}
		if *machine == "cloud" {
			req.Depth = *depth
		} else {
			req.Nodes = *nodes
		}
		resp, err := mapd.EvalAdviseOpts(context.Background(), req, mapd.AdviseOptions{
			SearchDepthThreshold: *threshold,
		})
		if err != nil {
			return err
		}
		return emitJSON(resp)
	}
	var spec netmodel.Spec
	var h topology.Hierarchy
	switch *machine {
	case "hydra":
		spec = clusterHydra(*nodes)
		h = spec.Hierarchy()
	case "lumi":
		spec = clusterLUMI(*nodes)
		h = spec.Hierarchy()
	case "cloud":
		d := *depth
		if d == 0 {
			d = 10
		}
		if d < cluster.CloudMinDepth || d > cluster.CloudMaxDepth {
			return fmt.Errorf("cloud depth %d out of range %d..%d", d, cluster.CloudMinDepth, cluster.CloudMaxDepth)
		}
		spec = cluster.Cloud(d)
		h = spec.Hierarchy()
	default:
		return fmt.Errorf("unknown machine %q", *machine)
	}
	sc := advisor.Scenario{
		Spec:         spec,
		Hierarchy:    h,
		Coll:         advisor.Collective(*coll),
		CommSize:     *comm,
		Simultaneous: *simultaneous,
		Bytes:        *size,
	}
	thr := *threshold
	if thr <= 0 {
		thr = mapd.DefaultSearchDepthThreshold
	}
	if h.Depth() > thr {
		// Deep hierarchy: k! orders are out of reach — run the bounded
		// branch-and-bound/beam search and report what it accounted for.
		res, err := advisor.SearchOrders(context.Background(), sc, advisor.SearchOptions{Top: *top})
		if err != nil {
			return err
		}
		fmt.Printf("%s search for %s (%d ranks/comm, %d bytes, simultaneous=%v) on %s:\n",
			res.Mode, *coll, *comm, *size, *simultaneous, h)
		fmt.Printf("    accounted %d of %d! orders; evaluated %d order classes across %d search nodes",
			res.Covered+res.Pruned, h.Depth(), res.Evaluated, res.Nodes)
		if res.OptimalityGap > 0 {
			fmt.Printf(" (optimality gap %.4f)", res.OptimalityGap)
		}
		fmt.Println()
		for i, pr := range res.Best {
			fmt.Printf("%2d. %s\n", i+1, advisor.Explain(sc, pr))
		}
		fmt.Printf("    …\nworst evaluated: %s\n", advisor.Explain(sc, res.Worst))
		return nil
	}
	ranked, err := advisor.Recommend(sc, nil)
	if err != nil {
		return err
	}
	fmt.Printf("ranking %d orders for %s (%d ranks/comm, %d bytes, simultaneous=%v) on %s:\n",
		len(ranked), *coll, *comm, *size, *simultaneous, h)
	n := *top
	if n > len(ranked) {
		n = len(ranked)
	}
	for i := 0; i < n; i++ {
		fmt.Printf("%2d. %s\n", i+1, advisor.Explain(sc, ranked[i]))
	}
	fmt.Printf("    …\n%2d. %s\n", len(ranked), advisor.Explain(sc, ranked[len(ranked)-1]))
	return nil
}

func cmdProcsets(args []string) error {
	fs := flag.NewFlagSet("procsets", flag.ExitOnError)
	hier := fs.String("h", "", "hierarchy, e.g. 16,2,2,8")
	comm := fs.Int("comm", 0, "communicator size for the metrics (default innermost level)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	h, err := topology.Parse(*hier)
	if err != nil {
		return err
	}
	reg, err := procset.NewRegistry(h)
	if err != nil {
		return err
	}
	commSize := *comm
	if commSize == 0 {
		commSize = h.Level(h.Depth() - 1).Arity
	}
	fmt.Printf("process sets of %s:\n", h)
	for _, uri := range reg.Names() {
		s, err := reg.Lookup(uri)
		if err != nil {
			return err
		}
		ch, err := s.Characterize(commSize)
		if err != nil {
			return err
		}
		fmt.Printf("  %-28s order %-12s %s\n", uri, perm.Format(s.Order), ch)
	}
	return nil
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	lstopo := fs.String("lstopo", "", "path to an lstopo-style topology description")
	sysfs := fs.String("sysfs", "", "path to a sysfs-shaped directory (cpu/, node/)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var h topology.Hierarchy
	var err error
	switch {
	case *lstopo != "":
		f, ferr := os.Open(*lstopo)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		h, err = hwdetect.ParseLstopo(f)
	case *sysfs != "":
		h, err = hwdetect.FromSysFS(os.DirFS(*sysfs))
	default:
		return fmt.Errorf("detect needs -lstopo <file> or -sysfs <dir>")
	}
	if err != nil {
		return err
	}
	fmt.Printf("detected node hierarchy: %s (levels: %v)\n", h, h.Names())
	fmt.Printf("pass to the other commands as -h %s\n", joinArities(h))
	return nil
}

func joinArities(h topology.Hierarchy) string {
	out := ""
	for i, a := range h.Arities() {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprint(a)
	}
	return out
}

func clusterHydra(nodes int) netmodel.Spec { return cluster.Hydra(nodes, 1) }
func clusterLUMI(nodes int) netmodel.Spec  { return cluster.LUMI(nodes) }
