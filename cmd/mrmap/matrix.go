// The matrix subcommand: communication-matrix-aware placement. It reads
// (or generates) a sparse communication matrix, runs the procmap search —
// σ-order baseline, greedy construction, KL refinement — and prints the
// placement next to the best mixed-radix order it beat. With -server it
// posts the same canonical request to a running mrserved instead, so the
// offline and served answers diff cleanly.

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/commmatrix"
	"repro/internal/mapd"
	"repro/internal/perm"
	"repro/internal/procmap"
)

func cmdMatrix(args []string) error {
	fs := flag.NewFlagSet("matrix", flag.ExitOnError)
	hier := fs.String("h", "", "hierarchy, e.g. 4,2,2,8")
	matrixPath := fs.String("matrix", "", "sparse communication matrix JSON file (- for stdin)")
	gen := fs.String("gen", "", `generate traffic instead: halo:RxC[:bytes] or layers:G0xG1xG2:b0,b1,b2`)
	seed := fs.Int64("seed", 0, "refinement seed")
	rounds := fs.Int("rounds", 0, "refinement round cap (0 = default)")
	noRefine := fs.Bool("norefine", false, "greedy construction only, skip the local search")
	emit := fs.Bool("emit", false, "print the matrix JSON and exit (feed it back via -matrix)")
	asJSON := fs.Bool("json", false, "emit the service's canonical /v1/map/matrix response")
	server := fs.String("server", "", "POST to this mrserved base URL instead of evaluating locally")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sparse, err := loadMatrix(*matrixPath, *gen)
	if err != nil {
		return err
	}
	if *emit {
		return emitJSON(sparse)
	}
	req := mapd.MatrixMapRequest{
		Hierarchy: *hier,
		Matrix:    sparse,
		Seed:      *seed,
		MaxRounds: *rounds,
	}
	if *noRefine {
		f := false
		req.Refine = &f
	}
	var resp *mapd.MatrixMapResponse
	if *server != "" {
		resp, err = postMatrix(*server, req)
	} else {
		resp, err = mapd.EvalMatrixMap(context.Background(), req)
	}
	if err != nil {
		return err
	}
	if *asJSON {
		return emitJSON(resp)
	}
	fmt.Printf("hierarchy %v, %d ranks, matrix %s\n", resp.Hierarchy, resp.Ranks, resp.MatrixDigest)
	fmt.Printf("best order %s: cost %g\n", perm.Format(resp.BestOrder), resp.BestOrderCost)
	mode := resp.SearchMode
	if resp.Degraded {
		mode += " (degraded)"
	}
	fmt.Printf("matrix-aware [%s]: cost %g (%.2f%% better, %d rounds, %d swaps)\n",
		mode, resp.Cost, resp.ImprovementPct, resp.Rounds, resp.Swaps)
	fmt.Printf("placement (rank -> core): %v\n", resp.Placement)
	return nil
}

// loadMatrix reads a sparse matrix from a file (or stdin) or generates one
// of the synthetic workloads.
func loadMatrix(path, gen string) (commmatrix.Sparse, error) {
	switch {
	case path != "" && gen != "":
		return commmatrix.Sparse{}, fmt.Errorf("-matrix and -gen are mutually exclusive")
	case path != "":
		var r io.Reader = os.Stdin
		if path != "-" {
			f, err := os.Open(path)
			if err != nil {
				return commmatrix.Sparse{}, err
			}
			defer f.Close()
			r = f
		}
		var s commmatrix.Sparse
		dec := json.NewDecoder(r)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&s); err != nil {
			return commmatrix.Sparse{}, fmt.Errorf("parsing matrix: %w", err)
		}
		return s, nil
	case gen != "":
		m, err := genMatrix(gen)
		if err != nil {
			return commmatrix.Sparse{}, err
		}
		return m.Sparse(), nil
	default:
		return commmatrix.Sparse{}, fmt.Errorf("matrix needs -matrix <file> or -gen <spec>")
	}
}

func genMatrix(spec string) (*commmatrix.Matrix, error) {
	kind, rest, _ := strings.Cut(spec, ":")
	switch kind {
	case "halo":
		dims, bstr, _ := strings.Cut(rest, ":")
		g, err := parseInts(dims)
		if err != nil || len(g) != 2 {
			return nil, fmt.Errorf("halo wants RxC dimensions, got %q", rest)
		}
		b := 1024.0
		if bstr != "" {
			if _, err := fmt.Sscanf(bstr, "%g", &b); err != nil {
				return nil, fmt.Errorf("bad halo bytes %q", bstr)
			}
		}
		return procmap.Halo(g[0], g[1], b)
	case "layers":
		dims, bstr, ok := strings.Cut(rest, ":")
		g, err := parseInts(dims)
		if err != nil || len(g) != 3 || !ok {
			return nil, fmt.Errorf("layers wants G0xG1xG2:b0,b1,b2, got %q", rest)
		}
		var mb [3]float64
		bs := strings.Split(bstr, ",")
		if len(bs) != 3 {
			return nil, fmt.Errorf("layers wants three per-mode byte volumes, got %q", bstr)
		}
		for i, s := range bs {
			if _, err := fmt.Sscanf(s, "%g", &mb[i]); err != nil {
				return nil, fmt.Errorf("bad mode volume %q", s)
			}
		}
		return procmap.GridLayers([3]int{g[0], g[1], g[2]}, mb)
	default:
		return nil, fmt.Errorf("unknown generator %q (want halo or layers)", kind)
	}
}

// postMatrix sends the canonical request to a running mrserved.
func postMatrix(base string, req mapd.MatrixMapRequest) (*mapd.MatrixMapResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	url := strings.TrimSuffix(base, "/") + "/v1/map/matrix"
	hr, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer hr.Body.Close()
	rb, err := io.ReadAll(hr.Body)
	if err != nil {
		return nil, err
	}
	if hr.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, hr.Status, strings.TrimSpace(string(rb)))
	}
	var resp mapd.MatrixMapResponse
	if err := json.Unmarshal(rb, &resp); err != nil {
		return nil, fmt.Errorf("decoding %s response: %w", url, err)
	}
	return &resp, nil
}
