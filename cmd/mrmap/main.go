// Command mrmap is the mixed-radix mapping toolbox: it decomposes ranks
// into hierarchy coordinates, computes reordered ranks, prints full
// reordering tables and rankfiles, characterizes orders (ring cost and
// process pairs per level), generates --cpu-bind=map_cpu core lists
// (Algorithm 3), and matches orders against Slurm --distribution values.
//
// Usage:
//
//	mrmap decompose  -h 2,2,4 -rank 10
//	mrmap compose    -h 2,2,4 -coords 1,0,2 -order 0,1,2
//	mrmap reorder    -h 2,2,4 -order 0,1,2 [-rankfile]
//	mrmap orders     -h 16,2,2,8 -comm 16
//	mrmap mapcpu     -h 2,4,2,8 -order 2,1,0,3 -n 8
//	mrmap slurm      -h 2,2,4 -order 2,0,1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/mapd"
	"repro/internal/metrics"
	"repro/internal/mixedradix"
	"repro/internal/perm"
	"repro/internal/reorder"
	"repro/internal/slurm"
	"repro/internal/topology"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "decompose":
		err = cmdDecompose(args)
	case "compose":
		err = cmdCompose(args)
	case "reorder":
		err = cmdReorder(args)
	case "orders":
		err = cmdOrders(args)
	case "mapcpu":
		err = cmdMapCPU(args)
	case "slurm":
		err = cmdSlurm(args)
	case "advise":
		err = cmdAdvise(args)
	case "matrix":
		err = cmdMatrix(args)
	case "procsets":
		err = cmdProcsets(args)
	case "detect":
		err = cmdDetect(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mrmap: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrmap:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `mrmap — mixed-radix enumeration of hierarchical machines

commands:
  decompose  -h <hier> -rank <r>                     rank -> coordinates (Alg. 1)
  compose    -h <hier> -coords <c> -order <sigma>    coordinates -> rank (Alg. 2)
  reorder    -h <hier> -order <sigma> [-rankfile]    full mapping table / rankfile
  orders     -h <hier> [-comm <size>]                characterize all orders
  mapcpu     -h <node-hier> -order <sigma> -n <k>    --cpu-bind=map_cpu list (Alg. 3)
  slurm      -h <hier> -order <sigma>                equivalent --distribution value
  advise     -machine hydra -coll alltoall -comm 16  rank the orders analytically
  matrix     -h <hier> -matrix <file> | -gen <spec>  communication-matrix-aware placement
  procsets   -h <hier>                               MPI-sessions-style process sets
  detect     -lstopo <file> | -sysfs <dir>           derive the hierarchy from a machine description

hierarchies are written 2,2,4 or 2x2x4; orders 0-1-2 or 0,1,2.
`)
}

// emitJSON prints v in the service's canonical wire format, so mrmap
// output diffs cleanly against an mrserved response for the same query.
func emitJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func parseInts(s string) ([]int, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == '-' || r == 'x' || r == ' ' })
	out := make([]int, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in %q", f, s)
		}
		out = append(out, v)
	}
	return out, nil
}

func cmdDecompose(args []string) error {
	fs := flag.NewFlagSet("decompose", flag.ExitOnError)
	hier := fs.String("h", "", "hierarchy, e.g. 2,2,4")
	rank := fs.Int("rank", 0, "rank to decompose")
	order := fs.String("order", "", "order sigma for the reordered rank (default identity)")
	asJSON := fs.Bool("json", false, "emit the service's canonical /v1/map response")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asJSON {
		resp, err := mapd.EvalMap(mapd.MapRequest{Hierarchy: *hier, Order: *order, Rank: rank})
		if err != nil {
			return err
		}
		return emitJSON(resp)
	}
	h, err := topology.Parse(*hier)
	if err != nil {
		return err
	}
	c, err := mixedradix.DecomposeChecked(h.Arities(), *rank)
	if err != nil {
		return err
	}
	fmt.Printf("hierarchy %s (levels: %s)\n", h, strings.Join(h.Names(), ", "))
	fmt.Printf("rank %d -> coordinates %v\n", *rank, c)
	return nil
}

func cmdCompose(args []string) error {
	fs := flag.NewFlagSet("compose", flag.ExitOnError)
	hier := fs.String("h", "", "hierarchy")
	coords := fs.String("coords", "", "coordinates, e.g. 1,0,2")
	order := fs.String("order", "", "order sigma, e.g. 0-1-2")
	asJSON := fs.Bool("json", false, "emit the service's canonical /v1/map response")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asJSON {
		c, err := parseInts(*coords)
		if err != nil {
			return err
		}
		resp, err := mapd.EvalMap(mapd.MapRequest{Hierarchy: *hier, Order: *order, Coords: c})
		if err != nil {
			return err
		}
		return emitJSON(resp)
	}
	h, err := topology.Parse(*hier)
	if err != nil {
		return err
	}
	c, err := parseInts(*coords)
	if err != nil {
		return err
	}
	sigma, err := perm.Parse(*order)
	if err != nil {
		return err
	}
	r, err := mixedradix.ComposeChecked(h.Arities(), c, sigma)
	if err != nil {
		return err
	}
	fmt.Printf("coordinates %v under order %s -> rank %d\n", c, perm.Format(sigma), r)
	return nil
}

func cmdReorder(args []string) error {
	fs := flag.NewFlagSet("reorder", flag.ExitOnError)
	hier := fs.String("h", "", "hierarchy")
	order := fs.String("order", "", "order sigma")
	rankfile := fs.Bool("rankfile", false, "emit an Open MPI-style rankfile instead of the table")
	asJSON := fs.Bool("json", false, "emit the service's canonical /v1/map table response")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asJSON {
		resp, err := mapd.EvalMap(mapd.MapRequest{Hierarchy: *hier, Order: *order, Table: true})
		if err != nil {
			return err
		}
		return emitJSON(resp)
	}
	h, err := topology.Parse(*hier)
	if err != nil {
		return err
	}
	sigma, err := perm.Parse(*order)
	if err != nil {
		return err
	}
	ro, err := reorder.New(h, sigma)
	if err != nil {
		return err
	}
	if *rankfile {
		return ro.Rankfile(os.Stdout)
	}
	fmt.Printf("hierarchy %s, order %s: old rank -> new rank\n", h, perm.Format(sigma))
	for old := 0; old < ro.Size(); old++ {
		fmt.Printf("%4d -> %4d\n", old, ro.NewRank(old))
	}
	return nil
}

func cmdOrders(args []string) error {
	fs := flag.NewFlagSet("orders", flag.ExitOnError)
	hier := fs.String("h", "", "hierarchy")
	comm := fs.Int("comm", 0, "subcommunicator size for the metrics (default: innermost level)")
	asJSON := fs.Bool("json", false, "emit canonical /v1/metrics/order responses, one per order")
	if err := fs.Parse(args); err != nil {
		return err
	}
	h, err := topology.Parse(*hier)
	if err != nil {
		return err
	}
	commSize := *comm
	if commSize == 0 {
		commSize = h.Level(h.Depth() - 1).Arity
	}
	if *asJSON {
		out := make([]*mapd.OrderMetricsResponse, 0, int(perm.Factorial(h.Depth())))
		for _, sigma := range perm.All(h.Depth()) {
			resp, err := mapd.EvalOrderMetrics(mapd.OrderMetricsRequest{
				Hierarchy: *hier, Order: perm.Format(sigma), CommSize: commSize,
			})
			if err != nil {
				return err
			}
			out = append(out, resp)
		}
		return emitJSON(out)
	}
	orders := perm.All(h.Depth())
	fmt.Printf("hierarchy %s: %d orders, metrics for the first communicator of %d ranks\n",
		h, len(orders), commSize)
	fmt.Println("order (ring cost - % of process pairs per level)  [slurm --distribution]")
	for _, sigma := range orders {
		ch, err := metrics.Characterize(h, sigma, commSize)
		if err != nil {
			return err
		}
		caption := ""
		if d, ok := slurm.DistributionForOrder(h, sigma); ok {
			caption = "  [" + d.String() + "]"
		}
		fmt.Printf("%s%s\n", ch, caption)
	}
	classes, err := metrics.EquivalenceClasses(h, orders, commSize)
	if err != nil {
		return err
	}
	fmt.Printf("%d equivalence classes:\n", len(classes))
	for i, cls := range classes {
		names := make([]string, len(cls))
		for j, ch := range cls {
			names[j] = perm.Format(ch.Order)
		}
		fmt.Printf("  class %d: %s\n", i, strings.Join(names, " "))
	}
	return nil
}

func cmdMapCPU(args []string) error {
	fs := flag.NewFlagSet("mapcpu", flag.ExitOnError)
	hier := fs.String("h", "", "per-node hierarchy, e.g. 2,4,2,8")
	order := fs.String("order", "", "order sigma")
	n := fs.Int("n", 0, "number of cores to select")
	asJSON := fs.Bool("json", false, "emit the service's canonical /v1/select response")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asJSON {
		resp, err := mapd.EvalSelect(mapd.SelectRequest{Hierarchy: *hier, Order: *order, N: *n})
		if err != nil {
			return err
		}
		return emitJSON(resp)
	}
	h, err := topology.Parse(*hier)
	if err != nil {
		return err
	}
	sigma, err := perm.Parse(*order)
	if err != nil {
		return err
	}
	list, err := slurm.MapCPU(h, sigma, *n)
	if err != nil {
		return err
	}
	fmt.Printf("--cpu-bind=%s\n", slurm.FormatMapCPU(list))
	induced, err := slurm.InducedHierarchy(h, list)
	if err == nil {
		fmt.Printf("induced hierarchy of the selection: %v\n", induced)
	} else {
		fmt.Printf("selection is structurally non-uniform: %v\n", err)
	}
	return nil
}

func cmdSlurm(args []string) error {
	fs := flag.NewFlagSet("slurm", flag.ExitOnError)
	hier := fs.String("h", "", "hierarchy (level 0 = node, level 1 = socket)")
	order := fs.String("order", "", "order sigma")
	if err := fs.Parse(args); err != nil {
		return err
	}
	h, err := topology.Parse(*hier)
	if err != nil {
		return err
	}
	sigma, err := perm.Parse(*order)
	if err != nil {
		return err
	}
	if d, ok := slurm.DistributionForOrder(h, sigma); ok {
		fmt.Printf("order %s == --distribution=%s\n", perm.Format(sigma), d)
	} else {
		fmt.Printf("order %s cannot be expressed with --distribution\n", perm.Format(sigma))
	}
	return nil
}
