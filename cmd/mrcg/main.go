// Command mrcg regenerates Figure 9: strong scaling of the conjugate
// gradient benchmark on one simulated LUMI node, with the cores of each
// process count selected by every distinct mixed-radix map_cpu list
// (Algorithm 3), grouped by core set like the figure's colour bars.
//
// Usage:
//
//	mrcg                       # p = 2,4,8,16,32,64,128
//	mrcg -procs 8,32           # subset
//	mrcg -n 16384 -inner 15    # smaller problem
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cg"
	"repro/internal/figures"
	"repro/internal/mpi"
	"repro/internal/obs"
)

func main() {
	procsFlag := flag.String("procs", "2,4,8,16,32,64,128", "process counts to sweep")
	n := flag.Int("n", cg.ClassCScaled().N, "matrix dimension")
	nnzRow := flag.Int("nnzrow", cg.ClassCScaled().NNZPerRow, "off-diagonals per row")
	outer := flag.Int("outer", cg.ClassCScaled().OuterIters, "outer (zeta) iterations")
	inner := flag.Int("inner", cg.ClassCScaled().InnerIters, "CG iterations per outer step")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the runs to this file")
	metricsOut := flag.String("metrics", "", "write Prometheus text metrics of the runs to this file")
	flag.Parse()

	var sc *obs.Scope
	if *traceOut != "" || *metricsOut != "" {
		sc = obs.New(obs.Options{})
	}

	var procs []int
	for _, f := range strings.Split(*procsFlag, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			fmt.Fprintf(os.Stderr, "mrcg: bad process count %q\n", f)
			os.Exit(2)
		}
		procs = append(procs, v)
	}
	sort.Ints(procs)
	prob := cg.ClassCScaled()
	prob.N, prob.NNZPerRow, prob.OuterIters, prob.InnerIters = *n, *nnzRow, *outer, *inner

	fmt.Printf("Figure 9 — CG strong scaling on one LUMI node (⟦2,4,2,8⟧), N=%d, %d×%d iterations\n",
		prob.N, prob.OuterIters, prob.InnerIters)
	var base float64
	for _, p := range procs {
		results, err := figures.RunFigure9MPI([]int{p}, prob, mpi.Config{Obs: sc})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrcg:", err)
			os.Exit(1)
		}
		sels := results[p]
		best := sels[0].Duration
		for _, s := range sels {
			if s.Duration < best {
				best = s.Duration
			}
		}
		if base == 0 {
			base = best * float64(procs[0])
		}
		fmt.Print(figures.RenderFigure9(p, sels))
		fmt.Printf("  perfect scaling: %.3f s, best measured: %.3f s\n\n", base/float64(p), best)
	}
	if *traceOut != "" {
		if err := obs.WriteTraceFile(*traceOut, sc); err != nil {
			fmt.Fprintln(os.Stderr, "mrcg:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *traceOut)
	}
	if *metricsOut != "" {
		if err := obs.WritePrometheusFile(*metricsOut, sc.Registry()); err != nil {
			fmt.Fprintln(os.Stderr, "mrcg:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *metricsOut)
	}
}
