// Command mrperf is the performance observatory's CLI: it runs the
// registered benchmark suites, persists versioned BENCH_<suite>.json
// records, compares records with significance testing (the regression
// gate), and inspects live daemons — workload analytics via /v1/stats
// and pprof profiles via the -debug-addr listener.
//
// Usage:
//
//	mrperf list                               registered suites
//	mrperf run -suite kernels -o BENCH_kernels.json
//	mrperf smoke [-suite NAME]                1-iteration existence check
//	mrperf diff OLD.json NEW.json             compare; exit 1 on regression
//	mrperf gate -suites kernels,order_search  rerun + compare vs. baselines
//	mrperf top -addr http://127.0.0.1:8077    render /v1/stats
//	mrperf profile -debug http://127.0.0.1:8078 -kind cpu -seconds 5
//
// run/gate stamp records with the git SHA and timestamp passed via -git
// and -ts (defaulting to `git rev-parse --short HEAD` and the current
// UTC time), so trajectories are attributable without the harness
// guessing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"time"

	"repro/internal/mapd"
	"repro/internal/perf"
)

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Stdout)
	case "run":
		err = cmdRun(os.Args[2:])
	case "smoke":
		err = cmdSmoke(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "gate":
		err = cmdGate(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "profile":
		err = cmdProfile(os.Args[2:])
	case "-h", "--help", "help":
		usage(os.Stdout)
		return
	default:
		fmt.Fprintf(os.Stderr, "mrperf: unknown command %q\n", os.Args[1])
		usage(os.Stderr)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrperf:", err)
		os.Exit(1)
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: mrperf <command> [flags]

  list      registered benchmark suites
  run       run one suite and write its BENCH_<suite>.json record
  smoke     run every benchmark once (1 iteration) as an existence check
  diff      compare two records; exit 1 when a benchmark regressed
  gate      rerun suites and compare against committed baselines
  top       render a live daemon's /v1/stats workload analytics
  profile   fetch a pprof profile from a daemon's -debug-addr listener
`)
}

func cmdList(w io.Writer) error {
	for _, s := range perf.Suites() {
		fmt.Fprintf(w, "%-14s %2d benchmarks  gate ±%.0f%%  %s\n",
			s.Name, len(s.Benches), 100*s.Threshold, s.Description)
	}
	return nil
}

// stamp resolves the record attribution: explicit flags win, otherwise
// the git SHA comes from the working tree and the timestamp from the
// clock.
func stamp(gitSHA, ts string) (string, string) {
	if gitSHA == "" {
		if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
			gitSHA = strings.TrimSpace(string(out))
		} else {
			gitSHA = "unknown"
		}
	}
	if ts == "" {
		ts = time.Now().UTC().Format(time.RFC3339)
	}
	return gitSHA, ts
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	suite := fs.String("suite", "", "suite to run (required; see mrperf list)")
	out := fs.String("o", "", "output record path (default BENCH_<suite>.json)")
	reps := fs.Int("reps", 5, "independent samples per benchmark")
	benchTime := fs.Duration("benchtime", 200*time.Millisecond, "per-sample target duration")
	profile := fs.Bool("profile", false, "capture CPU+heap profiles and store top symbols")
	topN := fs.Int("topn", 10, "profile symbols to store per benchmark")
	gitSHA := fs.String("git", "", "git SHA to stamp (default: git rev-parse --short HEAD)")
	ts := fs.String("ts", "", "RFC3339 timestamp to stamp (default: now, UTC)")
	quiet := fs.Bool("q", false, "suppress per-benchmark progress lines")
	_ = fs.Parse(args)
	if *suite == "" {
		return fmt.Errorf("run: -suite is required (see mrperf list)")
	}
	s, err := perf.FindSuite(*suite)
	if err != nil {
		return err
	}
	sha, when := stamp(*gitSHA, *ts)
	opts := perf.RunOptions{Reps: *reps, BenchTime: *benchTime, Profile: *profile, ProfileTopN: *topN}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	rec, err := perf.RunSuite(s, sha, when, opts)
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = "BENCH_" + s.Name + ".json"
	}
	if err := rec.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks, git %s)\n", path, len(rec.Results), sha)
	return nil
}

func cmdSmoke(args []string) error {
	fs := flag.NewFlagSet("smoke", flag.ExitOnError)
	suite := fs.String("suite", "", "suite to smoke (default: all)")
	_ = fs.Parse(args)
	suites := perf.Suites()
	if *suite != "" {
		s, err := perf.FindSuite(*suite)
		if err != nil {
			return err
		}
		suites = []perf.Suite{s}
	}
	for _, s := range suites {
		rec, err := perf.RunSuite(s, "", "", perf.RunOptions{Smoke: true})
		if err != nil {
			return fmt.Errorf("smoke %s: %w", s.Name, err)
		}
		fmt.Printf("smoke %-14s ok (%d benchmarks)\n", s.Name, len(rec.Results))
	}
	return nil
}

// diffRecords loads, compares and reports two record files; it reports
// whether the new record regressed.
func diffRecords(w io.Writer, oldPath, newPath string, opts perf.DiffOptions) (bool, error) {
	old, err := perf.ReadRecord(oldPath)
	if err != nil {
		return false, err
	}
	new_, err := perf.ReadRecord(newPath)
	if err != nil {
		return false, err
	}
	return diffLoaded(w, old, new_, opts)
}

func diffLoaded(w io.Writer, old, new_ *perf.Record, opts perf.DiffOptions) (bool, error) {
	if opts.Threshold == 0 {
		// Default the gate width to the suite's own threshold.
		if s, err := perf.FindSuite(old.Suite); err == nil {
			opts.Threshold = s.Threshold
		}
	}
	d, err := perf.Diff(old, new_, opts)
	if err != nil {
		return false, err
	}
	fmt.Fprint(w, d.Format(old, new_))
	return len(d.Regressions()) > 0, nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0, "relative slowdown gate (default: the suite's)")
	alpha := fs.Float64("alpha", 0.05, "significance level")
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: want OLD.json NEW.json")
	}
	regressed, err := diffRecords(os.Stdout, fs.Arg(0), fs.Arg(1),
		perf.DiffOptions{Threshold: *threshold, Alpha: *alpha})
	if err != nil {
		return err
	}
	if regressed {
		return fmt.Errorf("performance regressed beyond the gate")
	}
	return nil
}

func cmdGate(args []string) error {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	suites := fs.String("suites", "kernels,order_search", "comma-separated suites to gate")
	dir := fs.String("dir", ".", "directory holding the baseline BENCH_<suite>.json files")
	reps := fs.Int("reps", 5, "independent samples per benchmark")
	benchTime := fs.Duration("benchtime", 200*time.Millisecond, "per-sample target duration")
	keep := fs.String("keep", "", "also write the fresh records into this directory")
	gitSHA := fs.String("git", "", "git SHA to stamp (default: git rev-parse --short HEAD)")
	ts := fs.String("ts", "", "RFC3339 timestamp to stamp (default: now, UTC)")
	_ = fs.Parse(args)

	sha, when := stamp(*gitSHA, *ts)
	failed := false
	for _, name := range strings.Split(*suites, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s, err := perf.FindSuite(name)
		if err != nil {
			return err
		}
		baseline := *dir + "/BENCH_" + name + ".json"
		old, err := perf.ReadRecord(baseline)
		if err != nil {
			return fmt.Errorf("gate %s: baseline: %w", name, err)
		}
		fmt.Printf("== gate %s (baseline git %s, ±%.0f%%)\n", name, old.GitSHA, 100*s.Threshold)
		fresh, err := perf.RunSuite(s, sha, when, perf.RunOptions{
			Reps: *reps, BenchTime: *benchTime,
			Logf: func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
		})
		if err != nil {
			return fmt.Errorf("gate %s: %w", name, err)
		}
		if *keep != "" {
			if err := fresh.WriteFile(*keep + "/BENCH_" + name + ".json"); err != nil {
				return err
			}
		}
		regressed, err := diffLoaded(os.Stdout, old, fresh, perf.DiffOptions{Threshold: s.Threshold})
		if err != nil {
			return err
		}
		if regressed {
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("performance regressed beyond the gate")
	}
	return nil
}

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8077", "daemon base URL")
	n := fs.Int("n", 10, "shape classes to show")
	_ = fs.Parse(args)
	resp, err := http.Get(strings.TrimRight(*addr, "/") + "/v1/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("/v1/stats: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	var rep mapd.StatsReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		return err
	}
	renderStats(os.Stdout, rep, *n)
	return nil
}

func renderStats(w io.Writer, rep mapd.StatsReport, n int) {
	fmt.Fprintf(w, "requests %d   cache hit rate %.1f%%   classes %d tracked / ~%d seen (K=%d, %d evictions)\n",
		rep.TotalRequests, 100*rep.CacheHitRate, rep.TrackedClasses,
		rep.DistinctClassesEstimate, rep.MaxClasses, rep.Evictions)

	if len(rep.Endpoints) > 0 {
		fmt.Fprintf(w, "endpoints:    %s\n", joinCounts(rep.Endpoints))
	}
	if len(rep.SearchModes) > 0 {
		fmt.Fprintf(w, "search modes: %s\n", joinCounts(rep.SearchModes))
	}
	if len(rep.Collectives) > 0 {
		fmt.Fprintf(w, "collectives:  %s\n", joinCounts(rep.Collectives))
	}
	if len(rep.Depths) > 0 {
		var parts []string
		for _, d := range rep.Depths {
			parts = append(parts, fmt.Sprintf("depth %d: %d", d.Depth, d.Requests))
		}
		fmt.Fprintf(w, "depths:       %s\n", strings.Join(parts, "  "))
	}
	classes := rep.Classes
	if len(classes) > n {
		classes = classes[:n]
	}
	if len(classes) > 0 {
		fmt.Fprintf(w, "%-18s %10s %8s %9s %10s %10s\n",
			"shape", "requests", "±err", "hit rate", "p50", "p99")
		for _, c := range classes {
			fmt.Fprintf(w, "%-18s %10d %8d %8.1f%% %8.2fms %8.2fms\n",
				c.Shape, c.Requests, c.CountErr, 100*c.CacheHitRate, c.P50Ms, c.P99Ms)
		}
	}
}

func joinCounts(m map[string]uint64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s %d", k, m[k]))
	}
	return strings.Join(parts, "  ")
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	debug := fs.String("debug", "http://127.0.0.1:8078", "daemon -debug-addr base URL")
	kind := fs.String("kind", "cpu", "profile kind: cpu or heap")
	seconds := fs.Int("seconds", 5, "cpu profile duration")
	n := fs.Int("n", 15, "symbols to show")
	_ = fs.Parse(args)
	syms, err := perf.FetchProfile(*debug, *kind, *seconds, *n)
	if err != nil {
		return err
	}
	fmt.Print(perf.FormatSymbols(syms))
	return nil
}
