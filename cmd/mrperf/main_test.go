package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mapd"
	"repro/internal/perf"
)

// TestDiffRecordsGate exercises the regression gate end to end on real
// record files: identical records pass, a fabricated 2x slowdown fails.
func TestDiffRecordsGate(t *testing.T) {
	dir := t.TempDir()
	base := perf.NewRecord("kernels", "abc1234", "2026-08-08T00:00:00Z")
	base.Reps, base.BenchTime = 5, "1ms"
	base.Results = resultList{
		{Name: "Kernel/alltoall", NsPerOp: 100, Samples: []float64{99, 100, 100, 101, 100}},
		{Name: "Kernel/allgather", NsPerOp: 50, Samples: []float64{49, 50, 50, 51, 50}},
	}.asPerf()
	oldPath := filepath.Join(dir, "old.json")
	if err := base.WriteFile(oldPath); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	regressed, err := diffRecords(&out, oldPath, oldPath, perf.DiffOptions{Threshold: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("identical records reported as regression:\n%s", out.String())
	}

	slow := perf.NewRecord("kernels", "def5678", "2026-08-08T01:00:00Z")
	slow.Reps, slow.BenchTime = 5, "1ms"
	slow.Results = resultList{
		{Name: "Kernel/alltoall", NsPerOp: 200, Samples: []float64{198, 199, 200, 201, 202}},
		{Name: "Kernel/allgather", NsPerOp: 50, Samples: []float64{49, 50, 50, 51, 50}},
	}.asPerf()
	newPath := filepath.Join(dir, "new.json")
	if err := slow.WriteFile(newPath); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	regressed, err = diffRecords(&out, oldPath, newPath, perf.DiffOptions{Threshold: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("2x slowdown not flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "Kernel/alltoall") {
		t.Fatalf("report does not name the regressed benchmark:\n%s", out.String())
	}
}

// results is a local alias so the test can build []perf.Result literals
// tersely.
type Result struct {
	Name    string
	NsPerOp float64
	Samples []float64
}

type resultList []Result

func (rs resultList) asPerf() []perf.Result {
	out := make([]perf.Result, len(rs))
	for i, r := range rs {
		out[i] = perf.Result{Name: r.Name, N: 1, NsPerOp: r.NsPerOp, Samples: r.Samples}
	}
	return out
}

// TestSmokeRunsEverySuite is the existence check behind `make check`: one
// iteration of every registered benchmark must still run.
func TestSmokeRunsEverySuite(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke runs every registered benchmark once")
	}
	for _, s := range perf.Suites() {
		rec, err := perf.RunSuite(s, "", "", perf.RunOptions{Smoke: true})
		if err != nil {
			t.Fatalf("suite %s: %v", s.Name, err)
		}
		if len(rec.Results) != len(s.Benches) {
			t.Fatalf("suite %s: %d results for %d benches", s.Name, len(rec.Results), len(s.Benches))
		}
	}
}

// TestRenderStats checks the `mrperf top` table against a canned
// /v1/stats payload served over HTTP, including the top-N cut.
func TestRenderStats(t *testing.T) {
	rep := mapd.StatsReport{
		TotalRequests:           120,
		CacheHitRate:            0.25,
		TrackedClasses:          3,
		MaxClasses:              32,
		DistinctClassesEstimate: 3,
		Classes: []mapd.ClassReport{
			{Shape: "2x4x8", Requests: 80, CacheHits: 20, CacheHitRate: 0.25, P50Ms: 0.5, P99Ms: 4},
			{Shape: "4x4", Requests: 30, CacheHitRate: 0.5, P50Ms: 0.1, P99Ms: 0.2},
			{Shape: "8", Requests: 10, P50Ms: 0.1, P99Ms: 0.1},
		},
		Depths:      []mapd.DepthCount{{Depth: 2, Requests: 40}, {Depth: 3, Requests: 80}},
		Collectives: map[string]uint64{"alltoall": 70, "allgather": 30},
		SearchModes: map[string]uint64{"pruned": 90, "fallback": 10},
		Endpoints:   map[string]uint64{"map": 100, "map_matrix": 20},
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/stats" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(rep)
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var got mapd.StatsReport
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var buf bytes.Buffer
	renderStats(&buf, got, 2)
	out := buf.String()
	for _, want := range []string{
		"requests 120",
		"cache hit rate 25.0%",
		"pruned 90",
		"alltoall 70",
		"map_matrix 20",
		"depth 3: 80",
		"2x4x8",
		"4x4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("top output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\n8 ") {
		t.Fatalf("top -n 2 should cut the third class:\n%s", out)
	}
}
