package main

import (
	"os"
	"strings"
	"testing"
	"time"
)

func TestPrintPlanDeterministic(t *testing.T) {
	render := func() string {
		f, err := os.CreateTemp(t.TempDir(), "plan")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := printPlan(f, "seed=42;replica-chaos:kills=2,by=3s,restart=2s", 3); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	out := render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("2 kills with restarts should print 4 events, got %d:\n%s", len(lines), out)
	}
	kills := 0
	for _, l := range lines {
		if strings.HasPrefix(l, "kill ") {
			kills++
		} else if !strings.HasPrefix(l, "restart ") {
			t.Fatalf("unrecognized schedule line %q", l)
		}
	}
	if kills != 2 {
		t.Fatalf("%d kill lines, want 2:\n%s", kills, out)
	}
	if again := render(); again != out {
		t.Fatalf("same seed rendered different schedules:\n%s\nvs\n%s", out, again)
	}
}

func TestPrintPlanRejectsBadPlan(t *testing.T) {
	if err := printPlan(os.Stdout, "replica:banana", 3); err == nil {
		t.Fatal("malformed plan accepted")
	}
}

func TestBuildRouterValidation(t *testing.T) {
	if _, err := buildRouter(options{replicas: ""}, nil); err == nil {
		t.Fatal("empty replica list accepted")
	}
	g, err := buildRouter(options{
		replicas: "http://127.0.0.1:1, http://127.0.0.1:2 ,",
		names:    "a,b",
		interval: time.Hour,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(g.States()); got != 2 {
		t.Fatalf("router tracks %d replicas, want 2 (trailing comma and spaces trimmed)", got)
	}
}
