// Command mrgate fronts a fleet of mrserved replicas with the
// internal/fleet consistent-hash router: every canonical request key is
// pinned to a home replica (keeping each replica's cache warm for its
// slice of the key space), replica health is tracked actively and
// passively, failures fail over along the hash ring under a global retry
// budget with Retry-After-aware backoff, optional hedging covers the
// tail, and when every replica is down the gate answers from the local
// σ-order fallback with degraded:true instead of going dark.
//
// Usage:
//
//	mrgate -addr 127.0.0.1:8070 \
//	       -replicas http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//	mrgate -replicas ... -hedge 20ms -retries 3 -retry-budget 0.1
//	mrgate -replicas ... -trace gate-trace.json -sample 1
//
// Endpoints: POST /v1/map, /v1/advise, /v1/select, /v1/metrics/order,
// /v1/map/matrix (proxied); GET /metrics (fleet_* Prometheus metrics),
// /v1/fleet (replica states + retry budget + outlier flags),
// /v1/fleet/stats and /v1/fleet/slo (merged replica rollups), /healthz
// (healthy | degraded | draining).
//
// With -trace the gate joins the tracing plane: every routed request
// commits a gate-side span tree (route root, per-attempt proxy spans,
// backoff and fallback children) under the same trace id it forwards
// to the replicas, written as Perfetto JSON on shutdown. Stitch the
// gate export with the replicas' via mrtrace -stitch.
//
// A second mode prints a fault plan's replica-kill schedule and exits —
// the smoke harness uses it to pick its victim deterministically:
//
//	mrgate -print-plan -plan "seed=42;replica-chaos:kills=1,by=3s" -fleet-size 3
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/obs/rt"
)

type options struct {
	addr        string
	replicas    string
	names       string
	vnodes      int
	retries     int
	retryBudget float64
	retryBurst  float64
	backoff     time.Duration
	maxBackoff  time.Duration
	hedge       time.Duration
	maxBody     int64
	noFallback  bool
	interval    time.Duration
	probeTO     time.Duration
	announce    time.Duration
	drain       time.Duration

	traceFile string
	sample    float64

	planText  string
	fleetSize int
	printPlan bool
}

var logger = rt.NewTextLogger(os.Stderr, slog.LevelInfo)

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func buildRouter(o options, tracer *rt.Tracer) (*fleet.Router, error) {
	var names []string
	if o.names != "" {
		names = splitList(o.names)
	}
	return fleet.New(fleet.Config{
		Tracer:           tracer,
		Replicas:         splitList(o.replicas),
		Names:            names,
		VNodes:           o.vnodes,
		Retries:          o.retries,
		RetryBudgetRatio: o.retryBudget,
		RetryBudgetBurst: o.retryBurst,
		Backoff:          o.backoff,
		MaxBackoff:       o.maxBackoff,
		Hedge:            o.hedge,
		MaxBody:          o.maxBody,
		DisableFallback:  o.noFallback,
		Health: fleet.HealthConfig{
			Interval: o.interval,
			Timeout:  o.probeTO,
		},
		Logger: logger,
	})
}

// printPlan renders a fault plan's replica schedule, one event per line
// ("kill 1 @1.25s" / "restart 1 @3.25s"), so shell harnesses can follow
// the same deterministic schedule the seed produced.
func printPlan(w *os.File, planText string, fleetSize int) error {
	plan, err := fault.Parse(planText)
	if err != nil {
		return err
	}
	for _, ev := range plan.FleetEvents(fleetSize) {
		verb := "kill"
		if ev.Kind == fault.KindReplicaRestart {
			verb = "restart"
		}
		fmt.Fprintf(w, "%s %d @%gs\n", verb, ev.Target, ev.At)
	}
	return nil
}

// serve listens on o.addr and blocks until ctx is cancelled or the
// listener fails. ready (when non-nil) receives the bound address.
func serve(ctx context.Context, g *fleet.Router, o options, ready chan<- string) error {
	logger.Info("binding", "addr", o.addr)
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return fmt.Errorf("bind %s: %w", o.addr, err)
	}
	logger.Info("listening", "url", "http://"+ln.Addr().String(), "replicas", o.replicas)
	if ready != nil {
		ready <- ln.Addr().String()
	}
	g.Start(ctx)
	defer g.Stop()
	httpSrv := &http.Server{
		Handler:           g.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
		logger.Info("draining", "announce", o.announce, "budget", o.drain)
		g.StartDraining()
		time.Sleep(o.announce)
		sctx, cancel := context.WithTimeout(context.Background(), o.drain)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			logger.Warn("forced shutdown", "error", err)
			return httpSrv.Close()
		}
		logger.Info("bye")
		return nil
	}
}

func main() {
	o := options{}
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8070", "listen address")
	flag.StringVar(&o.replicas, "replicas", "", "comma-separated mrserved base URLs (required)")
	flag.StringVar(&o.names, "names", "", "comma-separated replica names (default r0..rN)")
	flag.IntVar(&o.vnodes, "vnodes", fleet.DefaultVNodes, "virtual nodes per replica on the hash ring")
	flag.IntVar(&o.retries, "retries", 3, "failover attempts after the first try")
	flag.Float64Var(&o.retryBudget, "retry-budget", 0.1, "retry-budget deposit per request (caps retry amplification)")
	flag.Float64Var(&o.retryBurst, "retry-burst", 64, "retry-budget bucket size")
	flag.DurationVar(&o.backoff, "backoff", 2*time.Millisecond, "base retry backoff (doubled per attempt, full jitter)")
	flag.DurationVar(&o.maxBackoff, "max-backoff", 250*time.Millisecond, "retry backoff cap")
	flag.DurationVar(&o.hedge, "hedge", 0, "hedge delay: race the second replica after this wait (0 = off)")
	flag.Int64Var(&o.maxBody, "max-body", 1<<20, "maximum request body in bytes")
	flag.BoolVar(&o.noFallback, "no-fallback", false, "disable the local degraded fallback when the whole fleet is down")
	flag.DurationVar(&o.interval, "check-interval", time.Second, "active health-check interval")
	flag.DurationVar(&o.probeTO, "check-timeout", 500*time.Millisecond, "health probe timeout")
	flag.DurationVar(&o.announce, "announce", 500*time.Millisecond, "drain announcement window before the listener closes")
	flag.DurationVar(&o.drain, "drain", 5*time.Second, "graceful-shutdown drain budget")
	flag.StringVar(&o.traceFile, "trace", "", "write the gate-side request-trace Perfetto JSON here on shutdown")
	flag.Float64Var(&o.sample, "sample", 1, "trace head-sampling ratio (1 = all; negative = errors only)")
	flag.StringVar(&o.planText, "plan", "", "fault plan (internal/fault DSL) for -print-plan")
	flag.IntVar(&o.fleetSize, "fleet-size", 3, "replica count for -print-plan")
	flag.BoolVar(&o.printPlan, "print-plan", false, "print the plan's replica kill/restart schedule and exit")
	flag.Parse()

	if o.printPlan {
		if err := printPlan(os.Stdout, o.planText, o.fleetSize); err != nil {
			fmt.Fprintln(os.Stderr, "mrgate:", err)
			os.Exit(1)
		}
		return
	}

	tracer := rt.NewTracer(rt.Options{Service: "mrgate", SampleRatio: o.sample})
	g, err := buildRouter(o, tracer)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrgate:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, g, o, nil); err != nil {
		fmt.Fprintln(os.Stderr, "mrgate:", err)
		os.Exit(1)
	}
	if o.traceFile != "" {
		if terr := obs.WriteTraceFile(o.traceFile, tracer.Scope()); terr != nil {
			logger.Error("writing trace", "path", o.traceFile, "error", terr)
			os.Exit(1)
		}
		logger.Info("wrote trace", "path", o.traceFile)
	}
}
